package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
	"spatialjoin/internal/wire"
)

// State is a follower's position in its replication lifecycle.
type State int32

const (
	// StateSeeding: no usable database yet; a snapshot is being fetched.
	StateSeeding State = iota
	// StateCatchingUp: serving reads, but known to be behind the primary.
	StateCatchingUp
	// StateStreaming: caught up to the primary's durable end at last
	// contact.
	StateStreaming
	// StateStalled: disconnected from the primary; reads serve the last
	// applied state until the lag policy calls them stale.
	StateStalled
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case StateSeeding:
		return "seeding"
	case StateCatchingUp:
		return "catching-up"
	case StateStreaming:
		return "streaming"
	case StateStalled:
		return "stalled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Addr is the primary's address, dialed with tcp unless Dial is set.
	Addr string
	// Config opens the replica database; it must have WAL set and Fault
	// unset (the follower needs the raw disk for delta application), and
	// should match the primary's page geometry.
	Config spatialjoin.Config
	// Dial overrides the connection factory (chaos tests cut links here).
	Dial func(ctx context.Context) (net.Conn, error)
	// MaxLagBytes marks the replica stale when its durable end trails the
	// primary's by more than this many log bytes (0: never stale by lag).
	MaxLagBytes int64
	// MaxLagAge marks the replica stale when nothing has been heard from
	// the primary for this long (0: never stale by age).
	MaxLagAge time.Duration
	// BackoffBase and BackoffMax bound the reconnect backoff (defaults
	// 5ms and 500ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics registers follower-side gauges and counters when set.
	Metrics *obs.Registry
}

// Follower is the replica side of replication: it seeds itself from the
// primary, tails the log, and keeps retrying — with capped backoff, delta
// resyncs after truncation, and full reseeds after anything worse — until
// stopped. All replication work happens on one background goroutine;
// readers acquire the current database through Acquire.
type Follower struct {
	opts FollowerOptions

	mu      sync.RWMutex // guards db and disk swaps against readers
	db      *spatialjoin.Database
	disk    *storage.Disk
	applied wal.LSN // NextApplyFloor of the last recovery; replay floor

	connMu sync.Mutex
	conn   net.Conn

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	state         atomic.Int32
	sourceDurable atomic.Int64
	lastProgress  atomic.Int64 // unix nanos of the last frame from the primary
	needResync    atomic.Bool

	reconnects atomic.Int64
	resyncs    atomic.Int64
	fullSeeds  atomic.Int64
	corrupt    atomic.Int64
	chunks     atomic.Int64
	bytes      atomic.Int64
	refreshes  atomic.Int64
	deltaPages atomic.Int64
	staleRejct atomic.Int64
}

// NewFollower validates the options and builds a stopped follower; call
// Start to begin replicating.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	if !opts.Config.WAL {
		return nil, errors.New("repl: follower requires Config.WAL")
	}
	if opts.Config.Fault != nil {
		return nil, errors.New("repl: follower Config.Fault must be nil (delta application needs the raw disk)")
	}
	if opts.Dial == nil {
		addr := opts.Addr
		if addr == "" {
			return nil, errors.New("repl: follower needs Addr or Dial")
		}
		opts.Dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 5 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 500 * time.Millisecond
	}
	f := &Follower{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	f.state.Store(int32(StateSeeding))
	f.registerMetrics()
	return f, nil
}

// Start launches the replication loop.
func (f *Follower) Start() { go f.run() }

// Stop halts replication, severs any open connection, and waits for the
// loop to exit. The last applied database stays available through Acquire
// (subject to the lag policy) until Close.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.connMu.Lock()
		if f.conn != nil {
			f.conn.Close()
		}
		f.connMu.Unlock()
	})
	<-f.done
}

// Close stops the follower and closes its database.
func (f *Follower) Close() {
	f.Stop()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.db != nil {
		f.db.Close()
		f.db = nil
		f.disk = nil
	}
}

// Acquire returns the replica database for one read, with a release the
// caller must invoke when done. It fails with a wire.StatusError carrying
// StatusStale when the replica has no seeded database yet or trails the
// primary beyond the configured lag policy.
func (f *Follower) Acquire() (*spatialjoin.Database, func(), error) {
	//sjlint:ignore lockbalance the read lock is handed to the caller as the release func, pinning the db across the read
	f.mu.RLock()
	if f.db == nil {
		f.mu.RUnlock()
		f.staleRejct.Add(1)
		obs.Record(obs.RecReplStale, 0, 0, 0, 0)
		return nil, nil, &wire.StatusError{Status: wire.StatusStale, Message: "replica has no seeded database yet"}
	}
	if f.opts.MaxLagBytes > 0 {
		if lag := f.lagBytes(); lag > f.opts.MaxLagBytes {
			f.mu.RUnlock()
			f.staleRejct.Add(1)
			obs.Record(obs.RecReplStale, 0, 0, lag, 0)
			return nil, nil, &wire.StatusError{
				Status:  wire.StatusStale,
				Message: fmt.Sprintf("replica lags the primary by %d log bytes (max %d)", lag, f.opts.MaxLagBytes),
			}
		}
	}
	if f.opts.MaxLagAge > 0 {
		if age := f.lagAge(); age > f.opts.MaxLagAge {
			f.mu.RUnlock()
			f.staleRejct.Add(1)
			obs.Record(obs.RecReplStale, 0, 0, 0, age.Nanoseconds())
			return nil, nil, &wire.StatusError{
				Status:  wire.StatusStale,
				Message: fmt.Sprintf("no word from the primary for %.1fs (max %s)", age.Seconds(), f.opts.MaxLagAge),
			}
		}
	}
	return f.db, f.mu.RUnlock, nil
}

// State reports the follower's current lifecycle state.
func (f *Follower) State() State { return State(f.state.Load()) }

// toState moves the state machine, landing the transition in the always-on
// flight recorder when the state actually changes (the tail loop re-asserts
// its state per chunk; only real transitions are worth a ring slot). The
// State and recorder code spaces coincide by construction.
func (f *Follower) toState(s State) {
	if prev := State(f.state.Swap(int32(s))); prev != s {
		obs.Record(obs.RecReplState, uint8(s), 0, int64(prev), 0)
	}
}

// Lag reports how far the replica trails the primary: in log bytes (the
// primary's durable LSN minus the replica's) and in time since the last
// frame arrived from the primary.
func (f *Follower) Lag() (bytes int64, age time.Duration) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.lagBytes(), f.lagAge()
}

// lagBytes needs at least a read lock.
func (f *Follower) lagBytes() int64 {
	if f.db == nil {
		return f.sourceDurable.Load()
	}
	lag := f.sourceDurable.Load() - int64(f.db.DurableLSN())
	if lag < 0 {
		lag = 0
	}
	return lag
}

func (f *Follower) lagAge() time.Duration {
	last := f.lastProgress.Load()
	if last == 0 {
		return 0
	}
	return time.Since(time.Unix(0, last))
}

func (f *Follower) stopped() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// run is the replication loop: dial, replicate until the session ends,
// back off, repeat. A session that made progress resets the backoff.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.opts.BackoffBase
	for {
		if f.stopped() {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		conn, err := f.opts.Dial(ctx)
		cancel()
		if err != nil {
			f.setDisconnected()
			if !f.sleep(backoff) {
				return
			}
			backoff = f.grow(backoff)
			continue
		}
		f.setConn(conn)
		mark := f.progressMark()
		serr := f.session(conn)
		progressed := f.progressMark() != mark
		f.setConn(nil)
		conn.Close()
		if f.stopped() {
			return
		}
		f.setDisconnected()
		f.reconnects.Add(1)
		if progressed {
			backoff = f.opts.BackoffBase
		}
		if serr != nil {
			if !f.sleep(backoff) {
				return
			}
			backoff = f.grow(backoff)
		}
	}
}

func (f *Follower) setConn(c net.Conn) {
	f.connMu.Lock()
	f.conn = c
	f.connMu.Unlock()
}

// setDisconnected runs on the replication goroutine, which is the only
// writer of f.db, so the unlocked read is race-free... except Close, which
// runs only after Stop has joined the goroutine.
func (f *Follower) setDisconnected() {
	if f.db == nil {
		f.toState(StateSeeding)
	} else {
		f.toState(StateStalled)
	}
}

func (f *Follower) sleep(d time.Duration) bool {
	select {
	case <-f.stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (f *Follower) grow(d time.Duration) time.Duration {
	d *= 2
	if d > f.opts.BackoffMax {
		d = f.opts.BackoffMax
	}
	return d
}

// progressMark is a monotone sum that moves whenever a session does useful
// work; run uses it to reset the reconnect backoff.
func (f *Follower) progressMark() int64 {
	return f.chunks.Load() + f.fullSeeds.Load() + f.resyncs.Load() + f.refreshes.Load()
}

// errResync reports that the primary answered GONE: the records the
// follower asked to tail were truncated, so the next session must resync
// from a snapshot delta.
var errResync = errors.New("repl: tail ask truncated on the primary; resyncing from a delta")

// session drives one connection: seed or resync if needed, then tail the
// log until the connection or the follower dies.
func (f *Follower) session(conn net.Conn) error {
	if f.db == nil {
		f.toState(StateSeeding)
		if err := f.fullSeed(conn, 1); err != nil {
			return err
		}
		f.needResync.Store(false)
	} else if f.needResync.Load() {
		f.toState(StateCatchingUp)
		if err := f.resync(conn, 1); err != nil {
			return err
		}
		f.needResync.Store(false)
	}
	return f.tail(conn, 2)
}

// fullSeed materializes a brand-new database from a full snapshot stream.
func (f *Follower) fullSeed(conn net.Conn, req uint64) error {
	if err := wire.WriteFrame(conn, wire.Frame{
		Type: wire.TypeSnapDelta, Request: req,
		Payload: wire.EncodeSnapDelta(wire.SnapDeltaRequest{SinceLSN: 0}),
	}); err != nil {
		return err
	}
	r := &snapReader{f: f, conn: conn, req: req}
	db, _, err := spatialjoin.SeedFromSnapshot(f.opts.Config, r)
	if err != nil {
		return err
	}
	return f.installSeed(db, r)
}

// installSeed drains the stream's closing frame and swaps the seeded
// database in, closing any predecessor.
func (f *Follower) installSeed(db *spatialjoin.Database, r *snapReader) error {
	if err := r.drain(); err != nil {
		db.Close()
		return err
	}
	disk, ok := db.Device().(*storage.Disk)
	if !ok {
		db.Close()
		return fmt.Errorf("repl: seeded device %T is not a raw disk", db.Device())
	}
	f.mu.Lock()
	old := f.db
	f.db = db
	f.disk = disk
	f.applied = db.RecoveryInfo().NextApplyFloor
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
	f.fullSeeds.Add(1)
	return nil
}

// resync catches a diverged or truncated-past follower up from a snapshot
// delta — or from a full snapshot, when the primary answers with one (its
// dirty-page tracking did not reach back to our applied LSN) or when a
// previous failed resync left no usable disk.
func (f *Follower) resync(conn net.Conn, req uint64) error {
	f.resyncs.Add(1)
	since := f.applied
	if f.disk == nil {
		since = 0
	}
	if err := wire.WriteFrame(conn, wire.Frame{
		Type: wire.TypeSnapDelta, Request: req,
		Payload: wire.EncodeSnapDelta(wire.SnapDeltaRequest{SinceLSN: uint64(since)}),
	}); err != nil {
		return err
	}
	r := &snapReader{f: f, conn: conn, req: req}
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return err
	}
	full, err := spatialjoin.SniffSnapshot(m[:])
	if err != nil {
		f.corrupt.Add(1)
		return err
	}
	rr := io.MultiReader(bytes.NewReader(m[:]), r)
	if full {
		db, _, serr := spatialjoin.SeedFromSnapshot(f.opts.Config, rr)
		if serr != nil {
			return serr
		}
		return f.installSeed(db, r)
	}
	// A delta patches the raw disk in place, so the database over it must
	// close first; readers see the replica as unseeded (STALE) until the
	// patched disk reopens through full-log replay.
	f.mu.Lock()
	old := f.db
	f.db = nil
	disk := f.disk
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
	info, aerr := spatialjoin.ApplySnapshotDelta(disk, rr)
	if aerr != nil {
		// The disk may be half-patched: discard it so the next session
		// reseeds from a full snapshot instead of trusting torn state.
		f.dropDisk()
		f.corrupt.Add(1)
		return aerr
	}
	if err := r.drain(); err != nil {
		f.dropDisk()
		return err
	}
	db, stats, rerr := spatialjoin.ReopenAt(f.opts.Config, disk, 1)
	if rerr != nil {
		f.dropDisk()
		return rerr
	}
	f.deltaPages.Add(int64(info.DataPages + info.LogPages))
	f.mu.Lock()
	f.db = db
	f.applied = stats.NextApplyFloor
	f.mu.Unlock()
	return nil
}

func (f *Follower) dropDisk() {
	f.mu.Lock()
	f.disk = nil
	f.mu.Unlock()
}

// tail streams the primary's log from the follower's durable end, applying
// each shipped chunk through AppendRawWAL and reopening through bounded
// recovery whenever a batch lands committed state.
func (f *Follower) tail(conn net.Conn, req uint64) error {
	from := f.db.DurableLSN()
	if err := wire.WriteFrame(conn, wire.Frame{
		Type: wire.TypeReplTail, Request: req,
		Payload: wire.EncodeReplTail(wire.ReplTailRequest{FromLSN: uint64(from)}),
	}); err != nil {
		return err
	}
	f.toState(StateCatchingUp)
	for {
		if f.stopped() {
			return nil
		}
		fr, err := wire.ReadFrame(conn, wire.MaxPayload)
		if err != nil {
			return err
		}
		if fr.Request != req {
			return fmt.Errorf("repl: frame for request %d on tail stream %d", fr.Request, req)
		}
		f.lastProgress.Store(time.Now().UnixNano())
		switch fr.Type {
		case wire.TypeWALChunk:
			c, derr := wire.DecodeWALChunk(fr.Payload)
			if derr != nil {
				f.corrupt.Add(1)
				return derr
			}
			f.sourceDurable.Store(int64(c.DurableLSN))
			if len(c.Records) > 0 {
				records, aerr := f.db.AppendRawWAL(wal.LSN(c.BaseLSN), c.Records)
				if aerr != nil {
					// A corrupt or misaligned chunk never lands: reconnect
					// and re-request from our (unchanged) durable end.
					f.corrupt.Add(1)
					return aerr
				}
				f.chunks.Add(1)
				f.bytes.Add(int64(len(c.Records)))
				if needsRefresh(records) {
					if rerr := f.refresh(); rerr != nil {
						return rerr
					}
				}
			}
			if int64(f.db.DurableLSN()) >= int64(c.DurableLSN) {
				f.toState(StateStreaming)
			} else {
				f.toState(StateCatchingUp)
			}
		case wire.TypeDone:
			d, derr := wire.DecodeDone(fr.Payload)
			if derr != nil {
				return derr
			}
			if d.Status == wire.StatusGone {
				obs.Record(obs.RecReplGone, 0, 0, int64(from), 0)
				f.needResync.Store(true)
				return errResync
			}
			return &wire.StatusError{Status: d.Status, Message: d.Message}
		default:
			return fmt.Errorf("repl: unexpected frame %#02x on tail stream", fr.Type)
		}
	}
}

// needsRefresh reports whether a shipped batch lands committed state — only
// then is the cost of reopening through recovery paid. Begin, image, and
// abort records change nothing a reader may see.
func needsRefresh(records []wal.Record) bool {
	for _, r := range records {
		switch r.Type {
		case wal.RecCommit, wal.RecNewCollection, wal.RecNewJoinIndex, wal.RecCheckpointEnd:
			return true
		}
	}
	return false
}

// refresh reopens the replica database through recovery floored at the
// last applied LSN, absorbing freshly shipped commits. Readers block on
// the swap rather than observing a stale window.
func (f *Follower) refresh() error {
	f.refreshes.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.db.Close()
	db, stats, err := spatialjoin.ReopenAt(f.opts.Config, f.disk, f.applied)
	if err != nil {
		f.db = nil
		f.disk = nil
		return err
	}
	f.db = db
	f.applied = stats.NextApplyFloor
	return nil
}

// snapReader adapts a run of SnapChunk frames into an io.Reader that ends
// in io.EOF at the stream's closing Done frame. Offsets are verified
// contiguous, so a dropped or reordered chunk fails instead of feeding the
// seed a gapped stream.
type snapReader struct {
	f    *Follower
	conn net.Conn
	req  uint64
	buf  []byte
	next uint64
	done bool
}

func (r *snapReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		if r.done {
			return 0, io.EOF
		}
		fr, err := wire.ReadFrame(r.conn, wire.MaxPayload)
		if err != nil {
			return 0, err
		}
		if fr.Request != r.req {
			return 0, fmt.Errorf("repl: frame for request %d on snapshot stream %d", fr.Request, r.req)
		}
		r.f.lastProgress.Store(time.Now().UnixNano())
		switch fr.Type {
		case wire.TypeSnapChunk:
			c, derr := wire.DecodeSnapChunk(fr.Payload)
			if derr != nil {
				r.f.corrupt.Add(1)
				return 0, derr
			}
			if c.Offset != r.next {
				r.f.corrupt.Add(1)
				return 0, fmt.Errorf("repl: snapshot chunk at offset %d, want %d", c.Offset, r.next)
			}
			r.next += uint64(len(c.Data))
			r.buf = c.Data
			r.f.chunks.Add(1)
			r.f.bytes.Add(int64(len(c.Data)))
		case wire.TypeDone:
			d, derr := wire.DecodeDone(fr.Payload)
			if derr != nil {
				return 0, derr
			}
			r.done = true
			if d.Status != wire.StatusOK {
				return 0, &wire.StatusError{Status: d.Status, Message: d.Message}
			}
		default:
			return 0, fmt.Errorf("repl: unexpected frame %#02x on snapshot stream", fr.Type)
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// drain consumes the stream through its closing Done frame; the decoders
// stop reading at the image trailer, one frame shy of it.
func (r *snapReader) drain() error {
	var scratch [4096]byte
	for !r.done {
		if _, err := r.Read(scratch[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// registerMetrics exposes follower-side replication gauges and counters.
func (f *Follower) registerMetrics() {
	m := f.opts.Metrics
	if m == nil {
		return
	}
	m.GaugeFunc("spatialjoin_repl_state",
		"Follower state: 0 seeding, 1 catching up, 2 streaming, 3 stalled.",
		func() float64 { return float64(f.state.Load()) })
	m.GaugeFunc("spatialjoin_repl_lag_bytes",
		"Log bytes the replica's durable end trails the primary's.",
		func() float64 { b, _ := f.Lag(); return float64(b) })
	m.GaugeFunc("spatialjoin_repl_lag_seconds",
		"Seconds since the last frame arrived from the primary.",
		func() float64 { _, a := f.Lag(); return a.Seconds() })
	count := func(name, help string, load func() int64) {
		m.CounterFunc(name, help, func() float64 { return float64(load()) })
	}
	count("spatialjoin_repl_reconnects_total", "Sessions ended and re-dialed.", func() int64 { return f.reconnects.Load() })
	count("spatialjoin_repl_resyncs_total", "Delta resyncs after the primary truncated past our ask.", func() int64 { return f.resyncs.Load() })
	count("spatialjoin_repl_full_seeds_total", "Full snapshot seeds applied.", func() int64 { return f.fullSeeds.Load() })
	count("spatialjoin_repl_corrupt_chunks_total", "Chunks rejected by CRC, decode, or alignment checks.", func() int64 { return f.corrupt.Load() })
	count("spatialjoin_repl_chunks_total", "Replication chunks applied.", func() int64 { return f.chunks.Load() })
	count("spatialjoin_repl_bytes_total", "Replication payload bytes applied.", func() int64 { return f.bytes.Load() })
	count("spatialjoin_repl_refreshes_total", "Reopens through recovery to absorb shipped commits.", func() int64 { return f.refreshes.Load() })
	count("spatialjoin_repl_delta_pages_total", "Pages shipped by snapshot deltas.", func() int64 { return f.deltaPages.Load() })
	count("spatialjoin_repl_stale_rejections_total", "Reads refused by the staleness policy.", func() int64 { return f.staleRejct.Load() })
}
