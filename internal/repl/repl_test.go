package repl

// Replication round-trip tests: a primary sjoind-shaped server (the real
// internal/server fronting a Source) and a Follower on a loopback
// connection. Convergence is asserted the way the root package's crash
// tests assert recovery: the replica must answer the strategy table
// identically to the primary and carry the same dataset fingerprint.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wire"

	"encoding/binary"
)

// replConfig is the shared geometry both ends open with: small pages so
// the workload spans many of them, immediate group commit so the durable
// LSN tracks every commit deterministically.
func replConfig() spatialjoin.Config {
	cfg := spatialjoin.DefaultConfig()
	cfg.PageSize = 512
	cfg.BufferPages = 64
	cfg.Workers = 1
	cfg.WAL = true
	cfg.WALGroupCommit = 1
	return cfg
}

// wRect is the i-th deterministic workload rectangle (the crash_test
// spread: some pairs overlap, some do not).
func wRect(i int) spatialjoin.Rect {
	x := float64((i * 137) % 900)
	y := float64((i * 211) % 900)
	w := float64(20 + (i*53)%80)
	h := float64(20 + (i*29)%80)
	return spatialjoin.NewRect(x, y, x+w, y+h)
}

// primary is a live primary: database, replication source, and a wire
// server on an ephemeral loopback listener.
type primary struct {
	t    *testing.T
	db   *spatialjoin.Database
	r, s *spatialjoin.Collection
	src  *Source
	srv  *server.Server
	addr string
	n    int // next workload rectangle index

	stopOnce sync.Once
	done     chan error
}

// startPrimary opens a primary with an initial workload, a join index (so
// the replica can answer IndexStrategy), and a serving Source.
func startPrimary(t *testing.T, metrics *obs.Registry) *primary {
	t.Helper()
	db, err := spatialjoin.Open(replConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := &primary{t: t, db: db, done: make(chan error, 1)}
	if p.r, err = db.CreateCollection("r"); err != nil {
		t.Fatal(err)
	}
	if p.s, err = db.CreateCollection("s"); err != nil {
		t.Fatal(err)
	}
	p.insert(30)
	if _, _, err := db.BuildJoinIndex(p.r, p.s, spatialjoin.Overlaps()); err != nil {
		t.Fatal(err)
	}
	p.src, err = NewSource(db, SourceOptions{
		PollInterval:   200 * time.Microsecond,
		HeartbeatEvery: 2 * time.Millisecond,
		Metrics:        metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.srv = server.New(db, server.Options{Repl: p.src})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = ln.Addr().String()
	go func() { p.done <- p.srv.Serve(ln) }()
	t.Cleanup(p.stop)
	return p
}

// stop tears the primary down; safe to call more than once, and tests
// that measure goroutine settling call it before sampling.
func (p *primary) stop() {
	p.stopOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.srv.Shutdown(ctx); err != nil {
			p.t.Errorf("primary shutdown: %v", err)
		}
		if err := <-p.done; err != nil && err != server.ErrServerClosed {
			p.t.Errorf("primary serve: %v", err)
		}
		p.src.Close()
		if err := p.db.Close(); err != nil {
			p.t.Errorf("primary close: %v", err)
		}
	})
}

// insert commits n workload rectangles, alternating collections — each a
// transaction the tail stream must ship.
func (p *primary) insert(n int) {
	p.t.Helper()
	for i := 0; i < n; i++ {
		k := p.n
		p.n++
		col := p.r
		if k%2 == 1 {
			col = p.s
		}
		if _, err := col.Insert(wRect(k), fmt.Sprintf("w%d", k)); err != nil {
			p.t.Fatalf("primary insert %d: %v", k, err)
		}
	}
}

// truncateLog advances the source's retention pin to the durable end and
// checkpoints, truncating the log under any follower that has not kept up.
func (p *primary) truncateLog() {
	p.t.Helper()
	if err := p.src.Advance(); err != nil {
		p.t.Fatalf("source advance: %v", err)
	}
	if _, err := p.db.Checkpoint(); err != nil {
		p.t.Fatalf("primary checkpoint: %v", err)
	}
}

// pages counts every page on the primary's device.
func (p *primary) pages() int {
	disk := p.db.Device().(*storage.Disk)
	total := 0
	for f := 0; f < disk.Files(); f++ {
		total += disk.NumPages(storage.FileID(f))
	}
	return total
}

// startFollower builds and starts a follower against the primary.
func startFollower(t *testing.T, p *primary, mutate func(*FollowerOptions)) *Follower {
	t.Helper()
	opts := FollowerOptions{
		Addr:        p.addr,
		Config:      replConfig(),
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	f, err := NewFollower(opts)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Close)
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitConverged blocks until the follower's durable log end reaches the
// primary's current one. The primary must be quiesced by the caller.
func waitConverged(t *testing.T, f *Follower, p *primary) {
	t.Helper()
	target := p.db.DurableLSN()
	waitFor(t, fmt.Sprintf("replica convergence to LSN %d", target), func() bool {
		db, release, err := f.Acquire()
		if err != nil {
			return false
		}
		defer release()
		return db.DurableLSN() >= target
	})
}

// fingerprintDB hashes every geometry's bounds in id order across both
// collections — the same dataset fingerprint cmd/sjoind banners.
func fingerprintDB(t *testing.T, db *spatialjoin.Database) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [32]byte
	for _, name := range []string{"r", "s"} {
		col, ok := db.Collection(name)
		if !ok {
			t.Fatalf("collection %q missing", name)
		}
		for id := 0; id < col.Len(); id++ {
			shape, _, err := col.Get(id)
			if err != nil {
				t.Fatalf("get %s/%d: %v", name, id, err)
			}
			b := shape.Bounds()
			binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(b.MinX))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b.MinY))
			binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(b.MaxX))
			binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(b.MaxY))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// assertEquivalent proves the replica is byte-identical to the primary's
// committed state: same dataset fingerprint, and the same canonical match
// set from every strategy plus the advisor.
func assertEquivalent(t *testing.T, f *Follower, p *primary) {
	t.Helper()
	db, release, err := f.Acquire()
	if err != nil {
		t.Fatalf("acquire replica: %v", err)
	}
	defer release()
	if pf, ff := fingerprintDB(t, p.db), fingerprintDB(t, db); pf != ff {
		t.Fatalf("dataset fingerprints diverge: primary %016x, replica %016x", pf, ff)
	}
	want, _, err := p.db.Join(p.r, p.s, spatialjoin.Overlaps(), spatialjoin.ScanStrategy)
	if err != nil {
		t.Fatalf("primary join: %v", err)
	}
	rf, ok := db.Collection("r")
	if !ok {
		t.Fatal("replica lost collection r")
	}
	sf, ok := db.Collection("s")
	if !ok {
		t.Fatal("replica lost collection s")
	}
	strategies := []spatialjoin.Strategy{
		spatialjoin.TreeStrategy, spatialjoin.ScanStrategy, spatialjoin.IndexStrategy,
	}
	for _, strat := range strategies {
		got, _, err := db.Join(rf, sf, spatialjoin.Overlaps(), strat)
		if err != nil {
			t.Fatalf("replica join (%v): %v", strat, err)
		}
		assertSameMatches(t, fmt.Sprintf("replica %v", strat), got, want)
	}
	got, _, _, err := db.JoinAuto(rf, sf, spatialjoin.Overlaps())
	if err != nil {
		t.Fatalf("replica JoinAuto: %v", err)
	}
	assertSameMatches(t, "replica auto", got, want)
}

func assertSameMatches(t *testing.T, label string, got, want []spatialjoin.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

// chaosLink is a dialer whose connections the test can sever at will and
// whose next connection can be armed to corrupt one in-flight byte.
type chaosLink struct {
	addr string

	mu          sync.Mutex
	conns       []net.Conn
	dials       int
	down        bool  // dials fail while the partition holds
	corruptNext int64 // when > 0, flip a byte after this many read bytes on the next conn
	killNext    int64 // when > 0, kill the next conn after this many read bytes
}

func newChaosLink(addr string) *chaosLink { return &chaosLink{addr: addr} }

func (l *chaosLink) dial(ctx context.Context) (net.Conn, error) {
	l.mu.Lock()
	if l.down {
		l.mu.Unlock()
		return nil, errLinkDown
	}
	l.mu.Unlock()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", l.addr)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.dials++
	if l.corruptNext > 0 {
		c = &corruptConn{Conn: c, after: l.corruptNext}
		l.corruptNext = 0
	}
	if l.killNext > 0 {
		c = &killConn{Conn: c, after: l.killNext}
		l.killNext = 0
	}
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// sever closes every connection the link ever handed out — the live one
// included — simulating a partition at an arbitrary stream position.
func (l *chaosLink) sever() {
	l.mu.Lock()
	for _, c := range l.conns {
		_ = c.Close()
	}
	l.conns = nil
	l.mu.Unlock()
}

// armCorruption makes the next dialed connection flip one byte after the
// given number of read bytes.
func (l *chaosLink) armCorruption(after int64) {
	l.mu.Lock()
	l.corruptNext = after
	l.mu.Unlock()
}

func (l *chaosLink) dialCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dials
}

// corruptConn flips a single bit of the byte stream at a chosen offset —
// past the framing layer's checksum, never past it undetected.
type corruptConn struct {
	net.Conn
	after int64
	done  bool
}

func (c *corruptConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if !c.done && n > 0 {
		if c.after < int64(n) {
			p[c.after] ^= 0x40
			c.done = true
		} else {
			c.after -= int64(n)
		}
	}
	return n, err
}

// TestFollowerSeedsAndStreams is the happy path: seed from a full
// snapshot, tail the log, absorb live commits, report healthy lag.
func TestFollowerSeedsAndStreams(t *testing.T) {
	reg := obs.NewRegistry()
	p := startPrimary(t, reg)
	f := startFollower(t, p, func(o *FollowerOptions) { o.Metrics = reg })
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	if f.fullSeeds.Load() != 1 {
		t.Errorf("full seeds = %d, want 1", f.fullSeeds.Load())
	}

	// Live commits stream across without reseeding.
	p.insert(12)
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	waitFor(t, "streaming state", func() bool { return f.State() == StateStreaming })
	if f.fullSeeds.Load() != 1 || f.resyncs.Load() != 0 {
		t.Errorf("streaming commits took %d seeds and %d resyncs, want 1 and 0",
			f.fullSeeds.Load(), f.resyncs.Load())
	}
	if f.chunks.Load() == 0 {
		t.Error("no tail chunks applied")
	}
	if lagBytes, _ := f.Lag(); lagBytes != 0 {
		t.Errorf("converged replica reports %d bytes of lag", lagBytes)
	}

	// The lag surface the issue demands: spatialjoin_repl_* families on
	// the shared registry, follower and source sides both.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, family := range []string{
		"spatialjoin_repl_state",
		"spatialjoin_repl_lag_bytes",
		"spatialjoin_repl_lag_seconds",
		"spatialjoin_repl_chunks_total",
		"spatialjoin_repl_source_tail_streams",
		"spatialjoin_repl_source_full_snapshots_total",
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("metrics exposition is missing %s", family)
		}
	}
}

// TestFollowerStalenessPolicy covers the read-side contract: an unseeded
// or lag-exceeded replica refuses reads with a typed STALE verdict.
func TestFollowerStalenessPolicy(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	f := startFollower(t, p, func(o *FollowerOptions) {
		o.Dial = link.dial
		o.MaxLagBytes = 1 // any real lag is over the line
	})
	waitConverged(t, f, p)
	if _, release, err := f.Acquire(); err != nil {
		t.Fatalf("healthy replica refused a read: %v", err)
	} else {
		release()
	}

	// Stop the retry loop cold, commit on the primary, and let the
	// follower learn the new durable end the way a heartbeat would: the
	// replica now measurably trails and must refuse with STALE.
	f.Stop()
	p.insert(8)
	f.sourceDurable.Store(int64(p.db.DurableLSN()))
	_, _, err := f.Acquire()
	if err == nil {
		t.Fatal("lagging replica served a read")
	}
	var se *wire.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusStale {
		t.Fatalf("lagging replica error = %v, want STALE", err)
	}
	if f.staleRejct.Load() == 0 {
		t.Error("stale rejection not counted")
	}
}

// TestFollowerMetricsScrapableBeforeConnect pins registration order: every
// spatialjoin_repl_* family must be present (at its zero value) from the
// moment NewFollower returns — before Start, before the primary is even
// reachable — so a scrape during the seed wait observes the replica
// seeding instead of an empty exposition. Regression test for the daemon
// starting its metrics listener only after the blocking seed wait.
func TestFollowerMetricsScrapableBeforeConnect(t *testing.T) {
	reg := obs.NewRegistry()
	f, err := NewFollower(FollowerOptions{
		Addr:    "127.0.0.1:1", // nothing listens here
		Config:  replConfig(),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Close waits for the replication loop, so it needs Start first; the
	// scrape below happens before either, which is the point.
	defer func() { f.Start(); f.Close() }()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	exposition := buf.String()
	for _, family := range []string{
		"spatialjoin_repl_state",
		"spatialjoin_repl_lag_bytes",
		"spatialjoin_repl_lag_seconds",
		"spatialjoin_repl_reconnects_total",
		"spatialjoin_repl_resyncs_total",
		"spatialjoin_repl_full_seeds_total",
		"spatialjoin_repl_corrupt_chunks_total",
		"spatialjoin_repl_chunks_total",
		"spatialjoin_repl_bytes_total",
		"spatialjoin_repl_refreshes_total",
	} {
		if !strings.Contains(exposition, family) {
			t.Errorf("pre-connect exposition is missing %s", family)
		}
	}
	if !strings.Contains(exposition, fmt.Sprintf("spatialjoin_repl_state %d", StateSeeding)) {
		t.Error("pre-connect state gauge does not read seeding")
	}
}
