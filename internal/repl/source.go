// Package repl keeps read-only replicas of a spatialjoin database
// continuously current over the wire protocol. The primary side is a
// Source: it serves WAL tail streams (raw CRC-checked records from a
// requested LSN) and snapshot streams (a full device image, or a delta of
// just the pages dirtied since the replica's last-applied LSN). The
// replica side is a Follower: a state machine that seeds itself from a
// snapshot, tails the log through ordinary recovery, detects when the
// primary has truncated the records it needs and falls back to a delta
// resync, and retries every failure with capped backoff — a replica left
// alone converges to the primary's committed prefix through disconnects,
// crashes, corrupt frames, and log truncation.
package repl

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
	"spatialjoin/internal/wire"
)

// ErrSourceClosed reports an operation on a closed Source.
var ErrSourceClosed = errors.New("repl: source closed")

// SourceOptions tunes a Source. The zero value serves.
type SourceOptions struct {
	// Checkpoint runs a checkpoint on the primary before a snapshot or
	// delta is cut, forcing committed content onto the device. Defaults to
	// the database's own Checkpoint; override to serialize with an external
	// checkpoint schedule.
	Checkpoint func() error
	// PollInterval is how often an idle tail stream looks for new records
	// (default 2ms).
	PollInterval time.Duration
	// HeartbeatEvery is how often an idle tail stream ships an empty chunk
	// carrying the primary's durable LSN, so a caught-up replica keeps an
	// up-to-date lag reading (default 100ms).
	HeartbeatEvery time.Duration
	// Metrics registers source-side counters when set.
	Metrics *obs.Registry
}

// Source serves replication streams off a live primary. It tracks which
// pages the log has imaged — by tailing the primary's own log with a
// TailReader, pinned against checkpoint truncation — so a delta request
// ships only the pages dirtied since the replica's applied LSN.
type Source struct {
	db     *spatialjoin.Database
	dev    storage.Device
	opts   SourceOptions
	closed chan struct{}
	once   sync.Once

	mu         sync.Mutex
	tracker    *wal.TailReader
	lastImage  map[storage.PageID]wal.LSN
	knownSince wal.LSN

	tailStreams   atomic.Int64
	snapStreams   atomic.Int64
	fullSnaps     atomic.Int64
	deltas        atomic.Int64
	chunks        atomic.Int64
	bytes         atomic.Int64
	trackerResets atomic.Int64
}

// NewSource builds a Source over db, which must run with a WAL. The
// dirty-page tracker starts at the current durable end: delta requests
// older than this instant fall back to full snapshots until the tracker
// has history for them.
func NewSource(db *spatialjoin.Database, opts SourceOptions) (*Source, error) {
	if opts.Checkpoint == nil {
		opts.Checkpoint = func() error { _, err := db.Checkpoint(); return err }
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	durable := db.DurableLSN()
	if durable == 0 {
		return nil, errors.New("repl: source requires a database with Config.WAL")
	}
	dev := db.Device()
	tracker, err := wal.OpenTail(dev, durable)
	if err != nil {
		return nil, err
	}
	s := &Source{
		db:         db,
		dev:        dev,
		opts:       opts,
		closed:     make(chan struct{}),
		tracker:    tracker,
		lastImage:  make(map[storage.PageID]wal.LSN),
		knownSince: durable,
	}
	db.RetainWAL(durable)
	s.registerMetrics()
	return s, nil
}

// Close stops the source: open streams return ErrSourceClosed at their
// next step, and the log-truncation pin is released.
func (s *Source) Close() {
	s.once.Do(func() {
		close(s.closed)
		s.db.RetainWAL(0)
	})
}

func (s *Source) isClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// catchUpLocked advances the dirty-page tracker to the log's durable end,
// recording each imaged page's latest LSN, then moves the truncation pin
// up to the tracker. If the tracker has somehow lost its place — the pin
// was released, or the log diverged — it restarts at the durable end and
// the delta horizon moves up with it: older delta requests get full
// snapshots, never wrong ones.
func (s *Source) catchUpLocked() error {
	for {
		base, chunk, err := s.tracker.Next(1 << 20)
		if err != nil {
			durable := s.db.DurableLSN()
			tracker, rerr := wal.OpenTail(s.dev, durable)
			if rerr != nil {
				return rerr
			}
			s.tracker = tracker
			s.lastImage = make(map[storage.PageID]wal.LSN)
			s.knownSince = durable
			s.trackerResets.Add(1)
			s.db.RetainWAL(durable)
			return nil
		}
		if chunk == nil {
			s.db.RetainWAL(s.tracker.Pos())
			return nil
		}
		records, err := wal.ParseChunk(base, chunk)
		if err != nil {
			return err
		}
		for _, r := range records {
			if r.Type == wal.RecImage {
				s.lastImage[r.Page] = r.LSN
			}
		}
	}
}

// Advance catches the dirty-page tracker up to the log's durable end and
// moves the truncation pin with it. Primaries call it on their checkpoint
// schedule: retention then follows the tracker rather than the source's
// birth, so the log stays truncatable, and a replica that fell behind the
// pin pays a delta resync instead of holding history hostage forever.
func (s *Source) Advance() error {
	if s.isClosed() {
		return ErrSourceClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.catchUpLocked()
}

// TailStream is one open WAL tail: a cursor over the primary's log from a
// replica's requested LSN. Every opened stream must be closed.
type TailStream struct {
	s    *Source
	tr   *wal.TailReader
	once sync.Once
}

// OpenTail opens a tail stream from the given record-boundary LSN. It
// fails with wal.ErrTruncatedAway when the log no longer reaches back that
// far — the caller should tell the replica to resync from a delta.
func (s *Source) OpenTail(from wal.LSN) (*TailStream, error) {
	if s.isClosed() {
		return nil, ErrSourceClosed
	}
	tr, err := wal.OpenTail(s.dev, from)
	if err != nil {
		return nil, err
	}
	s.tailStreams.Add(1)
	return &TailStream{s: s, tr: tr}, nil
}

// Next returns the next chunk of complete records, up to max bytes. A
// chunk with no Records means the stream is caught up; it still carries
// the primary's durable LSN for lag accounting.
func (t *TailStream) Next(max int) (wire.WALChunk, error) {
	base, chunk, err := t.tr.Next(max)
	if err != nil {
		return wire.WALChunk{}, err
	}
	if chunk == nil {
		base = t.tr.Pos()
	}
	return wire.WALChunk{
		BaseLSN:    uint64(base),
		DurableLSN: uint64(t.s.db.DurableLSN()),
		Records:    chunk,
	}, nil
}

// Close releases the stream.
func (t *TailStream) Close() error {
	t.once.Do(func() { t.s.tailStreams.Add(-1) })
	return nil
}

// SnapStream is one snapshot or delta export in flight: the encoding
// goroutine writes into a pipe the stream reads from. Every opened stream
// must be closed, which also reaps the goroutine.
type SnapStream struct {
	s    *Source
	r    *io.PipeReader
	done chan struct{}
	once sync.Once
	// Full reports whether the stream carries a full snapshot rather than
	// a delta (the replica asked from before the tracker's horizon).
	Full bool
}

// OpenSnap checkpoints the primary and opens a snapshot stream covering
// the pages dirtied since the given LSN — or a full device snapshot when
// since predates the tracker's horizon (in particular, since 0).
func (s *Source) OpenSnap(since wal.LSN) (*SnapStream, error) {
	if s.isClosed() {
		return nil, ErrSourceClosed
	}
	if err := s.opts.Checkpoint(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if err := s.catchUpLocked(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	full := since < s.knownSince
	var pages []storage.PageID
	if !full {
		for id, lsn := range s.lastImage {
			if lsn >= since {
				pages = append(pages, id)
			}
		}
	}
	s.mu.Unlock()
	if full {
		s.fullSnaps.Add(1)
	} else {
		s.deltas.Add(1)
	}
	pr, pw := io.Pipe()
	st := &SnapStream{s: s, r: pr, done: make(chan struct{}), Full: full}
	s.snapStreams.Add(1)
	go func() {
		defer close(st.done)
		var err error
		if full {
			_, err = s.db.ExportSnapshot(pw)
		} else {
			_, err = s.db.ExportDelta(pw, since, pages)
		}
		pw.CloseWithError(err)
	}()
	return st, nil
}

// Next returns the next at-most-max bytes of the snapshot stream, or
// io.EOF at its clean end.
func (st *SnapStream) Next(max int) ([]byte, error) {
	buf := make([]byte, max)
	n, err := io.ReadFull(st.r, buf)
	if n > 0 {
		return buf[:n], nil
	}
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	return nil, err
}

// Close releases the stream, reaping the export goroutine if the stream
// was abandoned partway.
func (st *SnapStream) Close() error {
	st.once.Do(func() {
		st.r.CloseWithError(ErrSourceClosed)
		<-st.done
		st.s.snapStreams.Add(-1)
	})
	return nil
}

// StreamTail serves one tail stream through send until the context ends,
// the source closes, or send fails. Idle periods ship heartbeat chunks so
// the replica's lag reading stays fresh; the first heartbeat goes out
// immediately.
func (s *Source) StreamTail(ctx context.Context, from wal.LSN, send func(wire.WALChunk) error) error {
	t, err := s.OpenTail(from)
	if err != nil {
		return err
	}
	defer t.Close()
	var lastBeat time.Time
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.closed:
			return ErrSourceClosed
		default:
		}
		c, err := t.Next(wire.MaxReplChunk)
		if err != nil {
			return err
		}
		if len(c.Records) == 0 {
			if time.Since(lastBeat) >= s.opts.HeartbeatEvery || lastBeat.IsZero() {
				if err := send(c); err != nil {
					return err
				}
				lastBeat = time.Now()
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-s.closed:
				return ErrSourceClosed
			case <-time.After(s.opts.PollInterval):
			}
			continue
		}
		if err := send(c); err != nil {
			return err
		}
		s.chunks.Add(1)
		s.bytes.Add(int64(len(c.Records)))
		lastBeat = time.Now()
	}
}

// StreamSnap serves one snapshot or delta stream through send and returns
// when the stream is complete. The boolean reports whether a full
// snapshot (rather than a delta) was shipped.
func (s *Source) StreamSnap(ctx context.Context, since wal.LSN, send func(wire.SnapChunk) error) (bool, error) {
	st, err := s.OpenSnap(since)
	if err != nil {
		return false, err
	}
	defer st.Close()
	var off uint64
	for {
		select {
		case <-ctx.Done():
			return st.Full, ctx.Err()
		case <-s.closed:
			return st.Full, ErrSourceClosed
		default:
		}
		data, err := st.Next(wire.MaxReplChunk)
		if err == io.EOF {
			return st.Full, nil
		}
		if err != nil {
			return st.Full, err
		}
		if err := send(wire.SnapChunk{Offset: off, Data: data}); err != nil {
			return st.Full, err
		}
		off += uint64(len(data))
		s.chunks.Add(1)
		s.bytes.Add(int64(len(data)))
	}
}

// registerMetrics exposes source-side replication counters.
func (s *Source) registerMetrics() {
	m := s.opts.Metrics
	if m == nil {
		return
	}
	m.GaugeFunc("spatialjoin_repl_source_tail_streams", "Open WAL tail streams.",
		func() float64 { return float64(s.tailStreams.Load()) })
	m.GaugeFunc("spatialjoin_repl_source_snap_streams", "Open snapshot streams.",
		func() float64 { return float64(s.snapStreams.Load()) })
	m.CounterFunc("spatialjoin_repl_source_full_snapshots_total", "Full snapshots shipped to replicas.",
		func() float64 { return float64(s.fullSnaps.Load()) })
	m.CounterFunc("spatialjoin_repl_source_deltas_total", "Incremental snapshot deltas shipped to replicas.",
		func() float64 { return float64(s.deltas.Load()) })
	m.CounterFunc("spatialjoin_repl_source_chunks_total", "Replication chunks shipped.",
		func() float64 { return float64(s.chunks.Load()) })
	m.CounterFunc("spatialjoin_repl_source_bytes_total", "Replication payload bytes shipped.",
		func() float64 { return float64(s.bytes.Load()) })
	m.CounterFunc("spatialjoin_repl_source_tracker_resets_total", "Dirty-page tracker resets (deltas degraded to full snapshots).",
		func() float64 { return float64(s.trackerResets.Load()) })
}
