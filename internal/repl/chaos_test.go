package repl

// Replication chaos: every failure mode the issue names — link killed
// mid-stream, replica crashed mid-apply, corrupted frames, the primary's
// log truncated under the replica — after which the replica must converge,
// unattended, to the primary's committed state on every strategy.

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"
)

// setDown makes dial fail while the partition holds.
func (l *chaosLink) setDown(down bool) {
	l.mu.Lock()
	l.down = down
	l.mu.Unlock()
}

// armKill makes the next dialed connection die after the given number of
// read bytes — a deterministic mid-stream, mid-apply cut.
func (l *chaosLink) armKill(after int64) {
	l.mu.Lock()
	l.killNext = after
	l.mu.Unlock()
}

// killConn closes its own connection once a byte budget is read, so the
// failure lands mid-frame from the reader's point of view.
type killConn struct {
	net.Conn
	after int64
}

func (c *killConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.after -= int64(n)
		if c.after <= 0 {
			_ = c.Conn.Close()
		}
	}
	return n, err
}

// TestFollowerSurvivesLinkKills severs the link repeatedly while the
// primary commits: the follower must reconnect with backoff each time and
// converge once the chaos stops.
func TestFollowerSurvivesLinkKills(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	f := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })
	waitConverged(t, f, p)

	for i := 0; i < 8; i++ {
		p.insert(4)
		link.sever()
		time.Sleep(2 * time.Millisecond)
	}
	p.insert(4)
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	if f.reconnects.Load() == 0 {
		t.Error("severed links produced no reconnects")
	}
}

// TestFollowerSurvivesSeedKilledMidApply cuts the very first snapshot
// stream partway through the device image: the half-applied seed must be
// discarded and the retry must converge.
func TestFollowerSurvivesSeedKilledMidApply(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	link.armKill(4096) // well inside the image, past the header
	f := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	if link.dialCount() < 2 {
		t.Errorf("seed survived a killed stream in %d dials, want a retry", link.dialCount())
	}
}

// TestFollowerCrashMidApplyThenRestart crashes the replica process in the
// middle of applying the stream (Stop with the link mid-flight) and
// restarts it as a fresh follower — the restart must seed and converge
// while the primary keeps committing.
func TestFollowerCrashMidApplyThenRestart(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	f := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })

	// Crash while chunks are in flight: commits stream as Stop lands.
	p.insert(10)
	f.Stop()
	f.Close()

	p.insert(10)
	restarted := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })
	waitConverged(t, restarted, p)
	assertEquivalent(t, restarted, p)
}

// TestFollowerSurvivesFrameCorruption flips one byte in shipped frames —
// once during the seed, once during the tail — and requires the follower
// to reject the stream by checksum and re-request it clean.
func TestFollowerSurvivesFrameCorruption(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	link.armCorruption(2048) // inside the snapshot image of the first conn
	f := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	if link.dialCount() < 2 {
		t.Errorf("corrupt seed stream not retried: %d dials", link.dialCount())
	}

	// Now corrupt the live tail: arm the next connection, cut the current
	// one, and commit through the corrupted then the clean link.
	link.armCorruption(512)
	link.sever()
	p.insert(10)
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
}

// TestFollowerResyncsAfterLogTruncation partitions the replica, lets the
// primary commit, advance its retention pin, and truncate its log past the
// replica's position — the reconnecting replica must be told GONE, fall
// back to a snapshot delta, and converge. The delta must ship only the
// pages dirtied behind the partition, not the database.
func TestFollowerResyncsAfterLogTruncation(t *testing.T) {
	p := startPrimary(t, nil)
	link := newChaosLink(p.addr)
	f := startFollower(t, p, func(o *FollowerOptions) { o.Dial = link.dial })
	waitConverged(t, f, p)
	assertEquivalent(t, f, p)

	link.setDown(true)
	link.sever()
	p.insert(10)
	p.truncateLog()
	link.setDown(false)

	waitConverged(t, f, p)
	assertEquivalent(t, f, p)
	if f.resyncs.Load() == 0 {
		t.Fatal("truncation did not force a resync")
	}
	if got := p.src.deltas.Load(); got != 1 {
		t.Errorf("source shipped %d deltas, want 1", got)
	}
	if got := p.src.fullSnaps.Load(); got != 1 {
		t.Errorf("source shipped %d full snapshots, want only the initial seed", got)
	}
	// Catch-up cost tracks the delta, not the database: the shipped pages
	// (dirty data pages plus the post-truncation log) must be a strict
	// subset of the device.
	total := int64(p.pages())
	if shipped := f.deltaPages.Load(); shipped == 0 || shipped >= total {
		t.Errorf("delta shipped %d pages of a %d-page device, want 0 < shipped < total", shipped, total)
	}
}

// TestReplTeardownLeaksNothing is the settle test the issue asks for:
// follower Stop/Close and primary Source teardown under concurrent
// streaming must leave no goroutines behind.
func TestReplTeardownLeaksNothing(t *testing.T) {
	before := settledGoroutines()

	p := startPrimary(t, nil)
	f := startFollower(t, p, nil)
	waitConverged(t, f, p)
	p.insert(8) // teardown lands with chunks still in flight
	f.Close()
	p.stop()

	if after := settledGoroutines(); after > before {
		t.Errorf("goroutines settled at %d after teardown, started at %d — leak", after, before)
	}
}

// settledGoroutines samples runtime.NumGoroutine until the count stops
// shrinking, giving exiting goroutines time to unwind.
func settledGoroutines() int {
	best := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= best && i > 10 {
			return best
		}
		if n < best {
			best = n
		}
	}
	return best
}

// errLinkDown is what a partitioned chaos link answers dials with.
var errLinkDown = errors.New("repl test: link is down")
