package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
)

// Operator codes: the θ-operators of Table 1 the protocol can name, each
// with up to two float64 parameters.
const (
	// OpOverlaps is "o₁ overlaps o₂" (no parameters).
	OpOverlaps uint8 = 0
	// OpWithinDistance is "o₁ within distance P1 from o₂".
	OpWithinDistance uint8 = 1
	// OpDistanceBand is "o₁ between P1 and P2 from o₂".
	OpDistanceBand uint8 = 2
	// OpIncludes is "o₁ includes o₂".
	OpIncludes uint8 = 3
	// OpContainedIn is "o₁ contained in o₂".
	OpContainedIn uint8 = 4
	// OpNorthwestOf is "o₁ to the northwest of o₂".
	OpNorthwestOf uint8 = 5
	// OpReachableWithin is "o₁ reachable from o₂ in P1 minutes at speed P2".
	OpReachableWithin uint8 = 6
)

// Strategy codes mirror the root package's Strategy values.
const (
	// StrategyTree is the hierarchical generalization-tree descent (II).
	StrategyTree uint8 = 0
	// StrategyScan is the nested-loop / exhaustive-scan baseline (I).
	StrategyScan uint8 = 1
	// StrategyIndex answers from a precomputed join index (III).
	StrategyIndex uint8 = 2
)

// maxNameLen bounds collection names on the wire.
const maxNameLen = 256

// OpSpec is a wire-encodable θ-operator: a code plus its parameters.
type OpSpec struct {
	Code   uint8
	P1, P2 float64
}

// Overlaps returns the parameterless overlaps OpSpec, the common case.
func Overlaps() OpSpec { return OpSpec{Code: OpOverlaps} }

// Operator materializes the spec as the engine's θ-operator, or fails with
// an ErrBadPayload-wrapped error for an unknown code.
func (o OpSpec) Operator() (pred.Operator, error) {
	switch o.Code {
	case OpOverlaps:
		return pred.Overlaps{}, nil
	case OpWithinDistance:
		return pred.WithinDistance{D: o.P1}, nil
	case OpDistanceBand:
		return pred.DistanceBand{Lo: o.P1, Hi: o.P2}, nil
	case OpIncludes:
		return pred.Includes{}, nil
	case OpContainedIn:
		return pred.ContainedIn{}, nil
	case OpNorthwestOf:
		return pred.NorthwestOf{}, nil
	case OpReachableWithin:
		return pred.ReachableWithin{Minutes: o.P1, Speed: o.P2}, nil
	default:
		return nil, fmt.Errorf("%w: unknown operator code %d", ErrBadPayload, o.Code)
	}
}

// SelectRequest asks for the IDs of objects of Collection matching
// Selector θ-related by Op, computed with Strategy.
type SelectRequest struct {
	Strategy   uint8
	Op         OpSpec
	Collection string
	Selector   geom.Rect
}

// JoinRequest asks for R ⋈θ S computed with Strategy.
type JoinRequest struct {
	Strategy uint8
	Op       OpSpec
	R, S     string
}

// QueryStats is the measured work a Done frame reports, in the cost
// model's units (a subset of the engine's Stats).
type QueryStats struct {
	FilterEvals int64
	ExactEvals  int64
	PageReads   int64
	IndexReads  int64
	Downgrades  int64
}

// Done is the payload of a TypeDone frame: the query's typed verdict, the
// total number of results streamed before it, the measured work, an
// optional diagnostic message, and — only when the request carried a
// sampled trace context — the server's span summary, which the client
// grafts under its call span to render one end-to-end tree. The span block
// is appended after the message field only when non-empty, so a Done
// without spans is byte-identical to what peers predating the extension
// produced and expect.
type Done struct {
	Status  Status
	Results uint64
	Stats   QueryStats
	Message string
	Spans   []obs.RemoteSpan
}

// buf is a cursor over a payload being decoded; all take-methods fail with
// ErrBadPayload once the payload is exhausted.
type buf struct {
	b []byte
}

func (b *buf) u8() (uint8, error) {
	if len(b.b) < 1 {
		return 0, fmt.Errorf("%w: short payload", ErrBadPayload)
	}
	v := b.b[0]
	b.b = b.b[1:]
	return v, nil
}

func (b *buf) u16() (uint16, error) {
	if len(b.b) < 2 {
		return 0, fmt.Errorf("%w: short payload", ErrBadPayload)
	}
	v := binary.LittleEndian.Uint16(b.b)
	b.b = b.b[2:]
	return v, nil
}

func (b *buf) u32() (uint32, error) {
	if len(b.b) < 4 {
		return 0, fmt.Errorf("%w: short payload", ErrBadPayload)
	}
	v := binary.LittleEndian.Uint32(b.b)
	b.b = b.b[4:]
	return v, nil
}

func (b *buf) u64() (uint64, error) {
	if len(b.b) < 8 {
		return 0, fmt.Errorf("%w: short payload", ErrBadPayload)
	}
	v := binary.LittleEndian.Uint64(b.b)
	b.b = b.b[8:]
	return v, nil
}

func (b *buf) f64() (float64, error) {
	v, err := b.u64()
	return math.Float64frombits(v), err
}

// str decodes a u16-length-prefixed string bounded by maxNameLen.
func (b *buf) str() (string, error) {
	n, err := b.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxNameLen {
		return "", fmt.Errorf("%w: name of %d bytes exceeds %d", ErrBadPayload, n, maxNameLen)
	}
	if len(b.b) < int(n) {
		return "", fmt.Errorf("%w: short payload", ErrBadPayload)
	}
	s := string(b.b[:n])
	b.b = b.b[n:]
	return s, nil
}

// done asserts the payload was consumed exactly.
func (b *buf) done() error {
	if len(b.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(b.b))
	}
	return nil
}

// appendStr appends a u16-length-prefixed string.
func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// appendF64 appends a little-endian float64.
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// checkName validates a collection name for encoding.
func checkName(s string) error {
	if s == "" || len(s) > maxNameLen {
		return fmt.Errorf("wire: collection name of %d bytes (want 1..%d)", len(s), maxNameLen)
	}
	return nil
}

// EncodeSelect renders the request as a TypeSelect payload.
func EncodeSelect(q SelectRequest) ([]byte, error) {
	if err := checkName(q.Collection); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, 4+2*8+2+len(q.Collection)+4*8)
	dst = append(dst, q.Strategy, q.Op.Code)
	dst = appendF64(dst, q.Op.P1)
	dst = appendF64(dst, q.Op.P2)
	dst = appendStr(dst, q.Collection)
	dst = appendF64(dst, q.Selector.MinX)
	dst = appendF64(dst, q.Selector.MinY)
	dst = appendF64(dst, q.Selector.MaxX)
	dst = appendF64(dst, q.Selector.MaxY)
	return dst, nil
}

// DecodeSelect parses a TypeSelect payload.
func DecodeSelect(p []byte) (SelectRequest, error) {
	b := buf{p}
	var q SelectRequest
	var err error
	if q.Strategy, err = b.u8(); err != nil {
		return q, err
	}
	if q.Op.Code, err = b.u8(); err != nil {
		return q, err
	}
	if q.Op.P1, err = b.f64(); err != nil {
		return q, err
	}
	if q.Op.P2, err = b.f64(); err != nil {
		return q, err
	}
	if q.Collection, err = b.str(); err != nil {
		return q, err
	}
	if q.Selector.MinX, err = b.f64(); err != nil {
		return q, err
	}
	if q.Selector.MinY, err = b.f64(); err != nil {
		return q, err
	}
	if q.Selector.MaxX, err = b.f64(); err != nil {
		return q, err
	}
	if q.Selector.MaxY, err = b.f64(); err != nil {
		return q, err
	}
	return q, b.done()
}

// EncodeJoin renders the request as a TypeJoin payload.
func EncodeJoin(q JoinRequest) ([]byte, error) {
	if err := checkName(q.R); err != nil {
		return nil, err
	}
	if err := checkName(q.S); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, 4+2*8+4+len(q.R)+len(q.S))
	dst = append(dst, q.Strategy, q.Op.Code)
	dst = appendF64(dst, q.Op.P1)
	dst = appendF64(dst, q.Op.P2)
	dst = appendStr(dst, q.R)
	dst = appendStr(dst, q.S)
	return dst, nil
}

// DecodeJoin parses a TypeJoin payload.
func DecodeJoin(p []byte) (JoinRequest, error) {
	b := buf{p}
	var q JoinRequest
	var err error
	if q.Strategy, err = b.u8(); err != nil {
		return q, err
	}
	if q.Op.Code, err = b.u8(); err != nil {
		return q, err
	}
	if q.Op.P1, err = b.f64(); err != nil {
		return q, err
	}
	if q.Op.P2, err = b.f64(); err != nil {
		return q, err
	}
	if q.R, err = b.str(); err != nil {
		return q, err
	}
	if q.S, err = b.str(); err != nil {
		return q, err
	}
	return q, b.done()
}

// MaxMatchesPerFrame is the largest match batch a TypeMatches payload can
// carry within MaxPayload.
const MaxMatchesPerFrame = (MaxPayload - 4) / 16

// EncodeMatches renders one streamed batch of match pairs. It panics when
// the batch exceeds MaxMatchesPerFrame — the server's batcher slices
// beneath the bound.
func EncodeMatches(ms []core.Match) []byte {
	if len(ms) > MaxMatchesPerFrame {
		panic(fmt.Sprintf("wire: match batch of %d exceeds %d", len(ms), MaxMatchesPerFrame))
	}
	dst := make([]byte, 0, 4+16*len(ms))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ms)))
	for _, m := range ms {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(m.R)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(m.S)))
	}
	return dst
}

// DecodeMatches parses a TypeMatches payload, appending to dst.
func DecodeMatches(dst []core.Match, p []byte) ([]core.Match, error) {
	b := buf{p}
	n, err := b.u32()
	if err != nil {
		return dst, err
	}
	if uint64(n)*16 != uint64(len(b.b)) {
		return dst, fmt.Errorf("%w: match batch claims %d pairs over %d bytes", ErrBadPayload, n, len(b.b))
	}
	for i := uint32(0); i < n; i++ {
		r, _ := b.u64()
		s, _ := b.u64()
		dst = append(dst, core.Match{R: int(int64(r)), S: int(int64(s))})
	}
	return dst, b.done()
}

// MaxIDsPerFrame is the largest ID batch a TypeIDs payload can carry.
const MaxIDsPerFrame = (MaxPayload - 4) / 8

// EncodeIDs renders one streamed batch of SELECT result IDs. It panics
// when the batch exceeds MaxIDsPerFrame.
func EncodeIDs(ids []int) []byte {
	if len(ids) > MaxIDsPerFrame {
		panic(fmt.Sprintf("wire: id batch of %d exceeds %d", len(ids), MaxIDsPerFrame))
	}
	dst := make([]byte, 0, 4+8*len(ids))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(id)))
	}
	return dst
}

// DecodeIDs parses a TypeIDs payload, appending to dst.
func DecodeIDs(dst []int, p []byte) ([]int, error) {
	b := buf{p}
	n, err := b.u32()
	if err != nil {
		return dst, err
	}
	if uint64(n)*8 != uint64(len(b.b)) {
		return dst, fmt.Errorf("%w: id batch claims %d ids over %d bytes", ErrBadPayload, n, len(b.b))
	}
	for i := uint32(0); i < n; i++ {
		id, _ := b.u64()
		dst = append(dst, int(int64(id)))
	}
	return dst, b.done()
}

// maxMessageLen bounds the diagnostic text of a Done frame.
const maxMessageLen = 1024

// EncodeDone renders a Done payload. Overlong messages are truncated, not
// rejected: the diagnostic is best-effort.
func EncodeDone(d Done) []byte {
	msg := d.Message
	if len(msg) > maxMessageLen {
		msg = msg[:maxMessageLen]
	}
	dst := make([]byte, 0, 2+8+5*8+2+len(msg))
	dst = append(dst, uint8(d.Status), 0)
	dst = binary.LittleEndian.AppendUint64(dst, d.Results)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Stats.FilterEvals))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Stats.ExactEvals))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Stats.PageReads))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Stats.IndexReads))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.Stats.Downgrades))
	dst = appendStr(dst, msg)
	if len(d.Spans) > 0 {
		dst = appendSpans(dst, d.Spans)
	}
	return dst
}

// DecodeDone parses a Done payload.
func DecodeDone(p []byte) (Done, error) {
	b := buf{p}
	var d Done
	st, err := b.u8()
	if err != nil {
		return d, err
	}
	d.Status = Status(st)
	if _, err := b.u8(); err != nil { // reserved
		return d, err
	}
	if d.Results, err = b.u64(); err != nil {
		return d, err
	}
	read := func(dst *int64) bool {
		v, e := b.u64()
		*dst = int64(v)
		err = e
		return e == nil
	}
	if !read(&d.Stats.FilterEvals) || !read(&d.Stats.ExactEvals) ||
		!read(&d.Stats.PageReads) || !read(&d.Stats.IndexReads) || !read(&d.Stats.Downgrades) {
		return d, err
	}
	n, err := b.u16()
	if err != nil {
		return d, err
	}
	if int(n) > maxMessageLen || len(b.b) < int(n) {
		return d, fmt.Errorf("%w: done message of %d bytes", ErrBadPayload, n)
	}
	d.Message = string(b.b[:n])
	b.b = b.b[n:]
	if len(b.b) > 0 {
		// An appended span summary; an empty remainder is the pre-extension
		// encoding and means no spans.
		if d.Spans, err = decodeSpans(&b); err != nil {
			return d, err
		}
	}
	return d, b.done()
}
