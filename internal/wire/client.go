package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
)

// ErrClientClosed is returned for calls on a closed Client.
var ErrClientClosed = errors.New("wire: client closed")

// Result is one query's complete response: the typed status, the streamed
// results reassembled in arrival order (the server streams them in the
// engine's canonical order), the measured work from the Done frame, and —
// for a traced call against a trace-capable server — the server's span
// summary (already grafted into the caller's trace by Select/Join; kept
// here for callers that want the raw spans).
type Result struct {
	Status  Status
	Flags   uint16
	Matches []core.Match // JOIN results
	IDs     []int        // SELECT results
	Stats   QueryStats
	Message string
	Spans   []obs.RemoteSpan
}

// Err converts the status to an error: nil for StatusOK and — because the
// results are still exact — StatusDegraded; a *StatusError otherwise.
func (r *Result) Err() error {
	switch r.Status {
	case StatusOK, StatusDegraded:
		return nil
	}
	return &StatusError{Status: r.Status, Message: r.Message}
}

// call is one in-flight request: batches accumulate until the Done frame
// closes done.
type call struct {
	res  Result
	err  error
	done chan struct{}
}

// Client is a pipelining client for the spatial query server: any number
// of goroutines may issue Ping/Select/Join concurrently over one
// connection; requests are correlated to interleaved response frames by
// request ID. The zero value is not usable — construct with Dial or
// NewClient.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]*call
	nextID  uint64
	broken  error // set once the read loop dies; fails all future calls

	readDone chan struct{}
}

// Dial connects to a server and starts the response reader.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		pending:  make(map[uint64]*call),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; in-flight calls fail with
// ErrClientClosed. Safe to call twice.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readDone
	return err
}

// fail marks the client broken and completes every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	calls := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	for _, cl := range calls {
		cl.err = err
		close(cl.done)
	}
}

// readLoop dispatches response frames to pending calls until the
// connection dies, then fails everything outstanding.
func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReader(c.conn)
	for {
		f, err := ReadFrame(br, MaxPayload)
		if err != nil {
			if errors.Is(err, net.ErrClosed) || err == io.EOF {
				err = ErrClientClosed
			}
			c.fail(err)
			return
		}
		if f.Request == 0 && f.Type == TypeDone {
			// Connection-level verdict (e.g. SERVER_BUSY at accept): the
			// server closes after sending it; surface the typed status to
			// every call on this connection.
			d, derr := DecodeDone(f.Payload)
			if derr != nil {
				c.fail(derr)
			} else {
				c.fail(&StatusError{Status: d.Status, Message: d.Message})
			}
			return
		}
		c.mu.Lock()
		cl := c.pending[f.Request]
		c.mu.Unlock()
		if cl == nil {
			continue // abandoned call (caller's context expired); drop
		}
		switch f.Type {
		case TypeMatches:
			var derr error
			cl.res.Matches, derr = DecodeMatches(cl.res.Matches, f.Payload)
			if derr != nil {
				c.fail(derr)
				return
			}
		case TypeIDs:
			var derr error
			cl.res.IDs, derr = DecodeIDs(cl.res.IDs, f.Payload)
			if derr != nil {
				c.fail(derr)
				return
			}
		case TypePong:
			c.complete(f.Request, cl, nil)
		case TypeDone:
			d, derr := DecodeDone(f.Payload)
			if derr != nil {
				c.fail(derr)
				return
			}
			cl.res.Status = d.Status
			cl.res.Flags = f.Flags
			cl.res.Stats = d.Stats
			cl.res.Message = d.Message
			cl.res.Spans = d.Spans
			var verr error
			if got := uint64(len(cl.res.Matches) + len(cl.res.IDs)); got != d.Results {
				verr = fmt.Errorf("%w: Done claims %d results, %d streamed", ErrBadPayload, d.Results, got)
			}
			c.complete(f.Request, cl, verr)
		default:
			c.fail(fmt.Errorf("%w: unexpected %#02x response", ErrBadPayload, f.Type))
			return
		}
	}
}

// complete finishes one call and unregisters it.
func (c *Client) complete(id uint64, cl *call, err error) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
	cl.err = err
	close(cl.done)
}

// send registers a call and writes its request frame. A non-zero flags
// value carrying FlagTraceContext sends the frame as VersionTrace with tc
// prefixed, propagating the caller's trace identity to the server.
func (c *Client) send(typ uint8, payload []byte, flags uint16, tc TraceContext) (*call, uint64, error) {
	cl := &call{done: make(chan struct{})}
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, 0, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = cl
	c.mu.Unlock()

	c.wmu.Lock()
	err := WriteFrame(c.conn, Frame{Type: typ, Flags: flags, Request: id, Trace: tc, Payload: payload})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, 0, err
	}
	return cl, id, nil
}

// wait blocks until the call completes or ctx expires. An expired context
// abandons the call: later frames for its request ID are discarded.
func (c *Client) wait(ctx context.Context, cl *call, id uint64) (*Result, error) {
	select {
	case <-cl.done:
		if cl.err != nil {
			return nil, cl.err
		}
		return &cl.res, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Ping round-trips an empty liveness frame.
func (c *Client) Ping(ctx context.Context) error {
	cl, id, err := c.send(TypePing, nil, 0, TraceContext{})
	if err != nil {
		return err
	}
	_, err = c.wait(ctx, cl, id)
	return err
}

// traceCall opens a client span covering one wire call when the context
// carries an obs.Trace, and returns the frame flags and trace context to
// propagate. With tracing off everything returned is zero and the request
// goes out as a plain version-1 frame — the untraced path is byte-identical
// to a client predating the extension.
func traceCall(ctx context.Context, name string) (*obs.Trace, obs.SpanID, uint16, TraceContext) {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return nil, 0, 0, TraceContext{}
	}
	span := tr.Begin(obs.SpanFromContext(ctx), name)
	return tr, span, FlagTraceContext, TraceContext{ID: tr.ID(), Flags: TraceFlagSampled}
}

// traceDone closes the call span, grafting the server's span summary (if
// the response carried one) under it so the caller's trace renders one
// end-to-end tree.
func traceDone(tr *obs.Trace, span obs.SpanID, res *Result, err error) {
	if tr == nil {
		return
	}
	if res != nil {
		tr.Graft(span, res.Spans)
		tr.End(span,
			obs.Str("status", res.Status.Label()),
			obs.Int("results", int64(len(res.Matches)+len(res.IDs))))
		return
	}
	if err != nil {
		tr.Event(span, "error", obs.Str("error", err.Error()))
	}
	tr.End(span)
}

// Select runs a SELECT on the server. The returned result's IDs are exact
// for StatusOK and StatusDegraded; other statuses carry no results (check
// Result.Err). When ctx carries an obs.Trace, the trace's identity is
// propagated on the request frame and the server's spans are grafted back
// under a "wire.select" client span.
func (c *Client) Select(ctx context.Context, collection string, selector geom.Rect, op OpSpec, strategy uint8) (*Result, error) {
	payload, err := EncodeSelect(SelectRequest{
		Strategy: strategy, Op: op, Collection: collection, Selector: selector,
	})
	if err != nil {
		return nil, err
	}
	tr, span, flags, tc := traceCall(ctx, "wire.select")
	cl, id, err := c.send(TypeSelect, payload, flags, tc)
	if err != nil {
		traceDone(tr, span, nil, err)
		return nil, err
	}
	res, err := c.wait(ctx, cl, id)
	traceDone(tr, span, res, err)
	return res, err
}

// Join runs a JOIN on the server. The returned result's Matches are the
// engine's canonical (R, S)-sorted match set for StatusOK and
// StatusDegraded; other statuses carry no results (check Result.Err). When
// ctx carries an obs.Trace, the trace's identity is propagated on the
// request frame and the server's spans are grafted back under a
// "wire.join" client span.
func (c *Client) Join(ctx context.Context, r, s string, op OpSpec, strategy uint8) (*Result, error) {
	payload, err := EncodeJoin(JoinRequest{Strategy: strategy, Op: op, R: r, S: s})
	if err != nil {
		return nil, err
	}
	tr, span, flags, tc := traceCall(ctx, "wire.join")
	cl, id, err := c.send(TypeJoin, payload, flags, tc)
	if err != nil {
		traceDone(tr, span, nil, err)
		return nil, err
	}
	res, err := c.wait(ctx, cl, id)
	traceDone(tr, span, res, err)
	return res, err
}
