package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestReplRoundTrip(t *testing.T) {
	tail := ReplTailRequest{FromLSN: 1 << 40}
	if got, err := DecodeReplTail(EncodeReplTail(tail)); err != nil || got != tail {
		t.Fatalf("repl tail round trip: %+v, %v", got, err)
	}
	delta := SnapDeltaRequest{SinceLSN: 7}
	if got, err := DecodeSnapDelta(EncodeSnapDelta(delta)); err != nil || got != delta {
		t.Fatalf("snap delta round trip: %+v, %v", got, err)
	}

	wc := WALChunk{BaseLSN: 100, DurableLSN: 200, Records: []byte("some raw records")}
	enc, err := EncodeWALChunk(wc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWALChunk(enc)
	if err != nil || got.BaseLSN != wc.BaseLSN || got.DurableLSN != wc.DurableLSN ||
		!bytes.Equal(got.Records, wc.Records) {
		t.Fatalf("wal chunk round trip: %+v, %v", got, err)
	}

	sc := SnapChunk{Offset: 4096, Data: bytes.Repeat([]byte{0xA5}, 100)}
	enc, err = EncodeSnapChunk(sc)
	if err != nil {
		t.Fatal(err)
	}
	gsc, err := DecodeSnapChunk(enc)
	if err != nil || gsc.Offset != sc.Offset || !bytes.Equal(gsc.Data, sc.Data) {
		t.Fatalf("snap chunk round trip: %+v, %v", gsc, err)
	}

	// Empty chunks are legal: a tail stream heartbeats lag with them.
	enc, err = EncodeWALChunk(WALChunk{BaseLSN: 5, DurableLSN: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeWALChunk(enc); err != nil || len(got.Records) != 0 {
		t.Fatalf("empty wal chunk round trip: %+v, %v", got, err)
	}
}

func TestReplChunkBounds(t *testing.T) {
	big := make([]byte, MaxReplChunk+1)
	if _, err := EncodeWALChunk(WALChunk{Records: big}); err == nil {
		t.Fatal("oversized wal chunk encoded")
	}
	if _, err := EncodeSnapChunk(SnapChunk{Data: big}); err == nil {
		t.Fatal("oversized snap chunk encoded")
	}

	// A declared length that disagrees with the actual bytes is typed.
	enc, err := EncodeWALChunk(WALChunk{BaseLSN: 1, DurableLSN: 2, Records: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	enc[16]++ // bump the declared record length
	if _, err := DecodeWALChunk(enc); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("mismatched wal chunk length: err=%v, want ErrBadPayload", err)
	}
	enc2, err := EncodeSnapChunk(SnapChunk{Offset: 1, Data: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapChunk(enc2[:len(enc2)-1]); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("truncated snap chunk: err=%v, want ErrBadPayload", err)
	}
	if _, err := DecodeReplTail(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty repl tail payload: err=%v, want ErrBadPayload", err)
	}
	if _, err := DecodeSnapDelta([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("overlong snap delta payload: err=%v, want ErrBadPayload", err)
	}
}

// FuzzReplFrames feeds arbitrary bytes to the four replication payload
// decoders directly (FuzzFrameDecode exercises them behind the frame
// layer): no panic, no over-allocation, failures typed ErrBadPayload, and
// every successful decode must re-encode byte-identically.
func FuzzReplFrames(f *testing.F) {
	f.Add(uint8(0), EncodeReplTail(ReplTailRequest{FromLSN: 42}))
	f.Add(uint8(1), EncodeSnapDelta(SnapDeltaRequest{SinceLSN: 7}))
	wc, _ := EncodeWALChunk(WALChunk{BaseLSN: 9, DurableLSN: 10, Records: []byte("records")})
	f.Add(uint8(2), wc)
	sc, _ := EncodeSnapChunk(SnapChunk{Offset: 1, Data: []byte("pages")})
	f.Add(uint8(3), sc)
	f.Add(uint8(2), []byte{})
	f.Add(uint8(3), bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, which uint8, p []byte) {
		assertTyped := func(err error) {
			if err != nil && !errors.Is(err, ErrBadPayload) {
				t.Fatalf("untyped decode error: %v", err)
			}
		}
		switch which % 4 {
		case 0:
			q, err := DecodeReplTail(p)
			assertTyped(err)
			if err == nil && !bytes.Equal(EncodeReplTail(q), p) {
				t.Fatal("repl tail re-encode diverged")
			}
		case 1:
			q, err := DecodeSnapDelta(p)
			assertTyped(err)
			if err == nil && !bytes.Equal(EncodeSnapDelta(q), p) {
				t.Fatal("snap delta re-encode diverged")
			}
		case 2:
			c, err := DecodeWALChunk(p)
			assertTyped(err)
			if err == nil {
				if len(c.Records) > MaxReplChunk {
					t.Fatalf("decoder admitted %d-byte chunk", len(c.Records))
				}
				reenc, err := EncodeWALChunk(c)
				if err != nil || !bytes.Equal(reenc, p) {
					t.Fatalf("wal chunk re-encode diverged: %v", err)
				}
			}
		case 3:
			c, err := DecodeSnapChunk(p)
			assertTyped(err)
			if err == nil {
				if len(c.Data) > MaxReplChunk {
					t.Fatalf("decoder admitted %d-byte chunk", len(c.Data))
				}
				reenc, err := EncodeSnapChunk(c)
				if err != nil || !bytes.Equal(reenc, p) {
					t.Fatalf("snap chunk re-encode diverged: %v", err)
				}
			}
		}
	})
}
