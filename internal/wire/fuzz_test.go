package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

// frameDecodeTypedErrors are the only failure shapes ReadFrame may produce
// (besides a clean io.EOF at a frame boundary).
var frameDecodeTypedErrors = []error{
	ErrBadMagic, ErrVersion, ErrBadFlags, ErrUnknownType,
	ErrFrameTooLarge, ErrChecksum, ErrTruncated, ErrBadTrace,
}

// FuzzFrameDecode feeds arbitrary bytes into the frame decoder and asserts
// the contract the server's read loop depends on: no panic, no hang, no
// allocation beyond the declared bound, and every failure is one of the
// package's typed errors. Frames that do decode must re-encode to the
// byte-identical canonical form (the codec is bijective on valid frames).
func FuzzFrameDecode(f *testing.F) {
	// Seed with valid frames of every type...
	for _, fr := range frameFixtures() {
		f.Add(AppendFrame(nil, fr))
	}
	sel, _ := EncodeSelect(SelectRequest{
		Strategy: StrategyTree, Op: Overlaps(),
		Collection: "r", Selector: geom.NewRect(0, 0, 1, 1),
	})
	f.Add(AppendFrame(nil, Frame{Type: TypeSelect, Request: 3, Payload: sel}))
	// ...a stream of two frames...
	two := AppendFrame(nil, Frame{Type: TypePing, Request: 1})
	f.Add(AppendFrame(two, Frame{Type: TypePong, Request: 1}))
	// ...and hostile shapes: truncations, a huge declared length, garbage.
	valid := AppendFrame(nil, Frame{Type: TypeJoin, Request: 2, Payload: []byte("xyz")})
	f.Add(valid[:HeaderSize-1])
	f.Add(valid[:len(valid)-1])
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[16:], 1<<31)
	f.Add(huge)
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize*2))
	// Trace-context extension seeds: a traced request, a traced DONE
	// carrying a span summary, and hostile shapes around the extension
	// (version 2 without the flag; payload shorter than the extension;
	// undefined trace-flag and reserved bits).
	traced := AppendFrame(nil, Frame{
		Type: TypeSelect, Flags: FlagTraceContext, Request: 11,
		Trace: TraceContext{ID: 0xDEADBEEFCAFEF00D, Flags: TraceFlagSampled}, Payload: sel,
	})
	f.Add(traced)
	f.Add(AppendFrame(nil, Frame{
		Type: TypeDone, Request: 11,
		Payload: EncodeDone(Done{Status: StatusOK, Results: 0, Spans: sampleRemoteSpans()}),
	}))
	v2noflag := append([]byte(nil), traced...)
	v2noflag[6], v2noflag[7] = 0, 0
	refreshCRC(v2noflag)
	f.Add(v2noflag)
	shortExt := AppendFrame(nil, Frame{Type: TypePing, Request: 1})
	shortExt[4] = VersionTrace
	binary.LittleEndian.PutUint16(shortExt[6:], FlagTraceContext)
	refreshCRC(shortExt)
	f.Add(shortExt)
	badTFlags := append([]byte(nil), traced...)
	badTFlags[HeaderSize+8] = 0xFF
	refreshCRC(badTFlags)
	f.Add(badTFlags)
	badRsv := append([]byte(nil), traced...)
	badRsv[HeaderSize+10] = 0x01
	refreshCRC(badRsv)
	f.Add(badRsv)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			fr, err := ReadFrame(r, MaxPayload)
			if err != nil {
				if err == io.EOF {
					return // clean boundary
				}
				typed := false
				for _, want := range frameDecodeTypedErrors {
					if errors.Is(err, want) {
						typed = true
						break
					}
				}
				if !typed {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			if len(fr.Payload) > MaxPayload {
				t.Fatalf("decoder admitted %d-byte payload", len(fr.Payload))
			}
			// Bijectivity: a decoded frame re-encodes byte-identically to
			// the consumed input prefix.
			reenc := AppendFrame(nil, fr)
			consumed := len(data) - r.Len()
			start := consumed - len(reenc)
			if start < 0 || !bytes.Equal(reenc, data[start:consumed]) {
				t.Fatalf("re-encoding diverged from consumed bytes")
			}
			// The payload decoders must also never panic on whatever the
			// frame carried, and must fail typed when they fail.
			checkPayloadDecoders(t, fr)
		}
	})
}

// checkPayloadDecoders runs every message decoder that could be dispatched
// for the frame's type and asserts failures are ErrBadPayload-typed.
func checkPayloadDecoders(t *testing.T, fr Frame) {
	t.Helper()
	assertTyped := func(err error) {
		if err != nil && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("untyped payload error for frame type %#02x: %v", fr.Type, err)
		}
	}
	switch fr.Type {
	case TypeSelect:
		_, err := DecodeSelect(fr.Payload)
		assertTyped(err)
	case TypeJoin:
		_, err := DecodeJoin(fr.Payload)
		assertTyped(err)
	case TypeMatches:
		_, err := DecodeMatches([]core.Match(nil), fr.Payload)
		assertTyped(err)
	case TypeIDs:
		_, err := DecodeIDs(nil, fr.Payload)
		assertTyped(err)
	case TypeDone:
		_, err := DecodeDone(fr.Payload)
		assertTyped(err)
	case TypeReplTail:
		_, err := DecodeReplTail(fr.Payload)
		assertTyped(err)
	case TypeSnapDelta:
		_, err := DecodeSnapDelta(fr.Payload)
		assertTyped(err)
	case TypeWALChunk:
		_, err := DecodeWALChunk(fr.Payload)
		assertTyped(err)
	case TypeSnapChunk:
		_, err := DecodeSnapChunk(fr.Payload)
		assertTyped(err)
	}
}
