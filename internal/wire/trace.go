package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"spatialjoin/internal/obs"
)

// Span-summary bounds. A DONE verdict carries at most MaxSpansPerDone
// spans, each with at most MaxAttrsPerSpan attributes; encoders truncate
// (the summary is best-effort diagnostics), decoders reject (the bounds
// cap what a hostile DONE can make a client allocate). The worst-case
// encoding stays far under MaxPayload.
const (
	// MaxSpansPerDone bounds the span summary of one DONE verdict.
	MaxSpansPerDone = 256
	// MaxAttrsPerSpan bounds one serialized span's attributes.
	MaxAttrsPerSpan = 8
	// maxSpanNameLen bounds a serialized span or attribute name.
	maxSpanNameLen = 64
	// maxAttrStrLen bounds a serialized string attribute value.
	maxAttrStrLen = 256
)

// attrKind discriminates serialized attribute values.
const (
	attrInt uint8 = 0
	attrStr uint8 = 1
)

// truncStr bounds s to n bytes for encoding.
func truncStr(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// appendSpans appends the span-summary block: u16 span count, then per
// span the parent index (u32, two's-complement -1 for roots), the name,
// start and duration in nanoseconds, and the bounded attribute list.
// Inputs beyond the bounds are truncated, never rejected — the summary is
// best-effort diagnostics riding a verdict that must always encode.
func appendSpans(dst []byte, spans []obs.RemoteSpan) []byte {
	if len(spans) > MaxSpansPerDone {
		spans = spans[:MaxSpansPerDone]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(spans)))
	for _, s := range spans {
		parent := s.Parent
		if int(parent) >= MaxSpansPerDone {
			// The parent was truncated away; reparent to the remote root so
			// the span still lands inside the grafted subtree.
			parent = -1
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(parent))
		dst = appendStr(dst, truncStr(s.Name, maxSpanNameLen))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Start.Nanoseconds()))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Dur.Nanoseconds()))
		attrs := s.Attrs
		if len(attrs) > MaxAttrsPerSpan {
			attrs = attrs[:MaxAttrsPerSpan]
		}
		dst = append(dst, uint8(len(attrs)))
		for _, a := range attrs {
			if a.IsString() {
				dst = append(dst, attrStr)
				dst = appendStr(dst, truncStr(a.Key, maxSpanNameLen))
				dst = appendStr(dst, truncStr(a.Str, maxAttrStrLen))
			} else {
				dst = append(dst, attrInt)
				dst = appendStr(dst, truncStr(a.Key, maxSpanNameLen))
				dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Int))
			}
		}
	}
	return dst
}

// decodeSpans parses a span-summary block off the cursor.
func decodeSpans(b *buf) ([]obs.RemoteSpan, error) {
	n, err := b.u16()
	if err != nil {
		return nil, err
	}
	if int(n) > MaxSpansPerDone {
		return nil, fmt.Errorf("%w: span summary claims %d spans (max %d)", ErrBadPayload, n, MaxSpansPerDone)
	}
	spans := make([]obs.RemoteSpan, 0, n)
	for i := 0; i < int(n); i++ {
		var s obs.RemoteSpan
		parent, err := b.u32()
		if err != nil {
			return nil, err
		}
		s.Parent = int32(parent)
		if s.Parent < -1 || int(s.Parent) >= i {
			return nil, fmt.Errorf("%w: span %d claims parent %d", ErrBadPayload, i, s.Parent)
		}
		if s.Name, err = b.str(); err != nil {
			return nil, err
		}
		if len(s.Name) > maxSpanNameLen {
			return nil, fmt.Errorf("%w: span name of %d bytes", ErrBadPayload, len(s.Name))
		}
		start, err := b.u64()
		if err != nil {
			return nil, err
		}
		dur, err := b.u64()
		if err != nil {
			return nil, err
		}
		s.Start, s.Dur = time.Duration(start), time.Duration(dur)
		if s.Start < 0 || s.Dur < 0 {
			return nil, fmt.Errorf("%w: negative span time", ErrBadPayload)
		}
		na, err := b.u8()
		if err != nil {
			return nil, err
		}
		if int(na) > MaxAttrsPerSpan {
			return nil, fmt.Errorf("%w: span claims %d attrs (max %d)", ErrBadPayload, na, MaxAttrsPerSpan)
		}
		for j := 0; j < int(na); j++ {
			kind, err := b.u8()
			if err != nil {
				return nil, err
			}
			key, err := b.str()
			if err != nil {
				return nil, err
			}
			if len(key) > maxSpanNameLen {
				return nil, fmt.Errorf("%w: attr key of %d bytes", ErrBadPayload, len(key))
			}
			switch kind {
			case attrInt:
				v, err := b.u64()
				if err != nil {
					return nil, err
				}
				s.Attrs = append(s.Attrs, obs.Int(key, int64(v)))
			case attrStr:
				v, err := b.str()
				if err != nil {
					return nil, err
				}
				s.Attrs = append(s.Attrs, obs.Str(key, v))
			default:
				return nil, fmt.Errorf("%w: unknown attr kind %d", ErrBadPayload, kind)
			}
		}
		spans = append(spans, s)
	}
	return spans, nil
}
