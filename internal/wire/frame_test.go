package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameFixtures returns one frame of every type with representative
// payloads.
func frameFixtures() []Frame {
	return []Frame{
		{Type: TypePing, Request: 1},
		{Type: TypePong, Request: 1},
		{Type: TypeSelect, Request: 2, Payload: []byte{1, 2, 3}},
		{Type: TypeJoin, Request: 1 << 60, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: TypeMatches, Request: 7, Payload: EncodeMatches(nil)},
		{Type: TypeIDs, Request: 7, Payload: EncodeIDs([]int{1, 2, 3})},
		{Type: TypeDone, Request: 7, Flags: FlagShed, Payload: EncodeDone(Done{Status: StatusServerBusy})},
		{Type: TypeReplTail, Request: 8, Payload: EncodeReplTail(ReplTailRequest{FromLSN: 1234})},
		{Type: TypeSnapDelta, Request: 9, Payload: EncodeSnapDelta(SnapDeltaRequest{SinceLSN: 99})},
		{Type: TypeWALChunk, Request: 8, Payload: mustPayload(EncodeWALChunk(WALChunk{
			BaseLSN: 1234, DurableLSN: 2048, Records: []byte("raw records"),
		}))},
		{Type: TypeSnapChunk, Request: 9, Payload: mustPayload(EncodeSnapChunk(SnapChunk{
			Offset: 512, Data: bytes.Repeat([]byte{0x5A}, 64),
		}))},
	}
}

// mustPayload unwraps a payload encoder that cannot fail on fixture input.
func mustPayload(p []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	for _, f := range frameFixtures() {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	for i, want := range frameFixtures() {
		got, err := ReadFrame(r, MaxPayload)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Request != want.Request ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round-trip mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r, MaxPayload); err != io.EOF {
		t.Fatalf("clean end of stream: got %v, want io.EOF", err)
	}
}

// corrupt returns the encoding of a valid frame with one byte altered.
func corrupt(t *testing.T, offset int, b byte) []byte {
	t.Helper()
	enc := AppendFrame(nil, Frame{Type: TypeJoin, Request: 9, Payload: []byte("payload")})
	if offset >= len(enc) {
		t.Fatalf("offset %d beyond frame of %d", offset, len(enc))
	}
	enc[offset] = b
	return enc
}

func TestFrameTypedErrors(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: TypeJoin, Request: 9, Payload: []byte("payload")})
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"bad magic", corrupt(t, 0, 'X'), ErrBadMagic},
		{"bad version", corrupt(t, 4, 99), ErrVersion},
		{"unknown type", corrupt(t, 5, 0x7F), ErrUnknownType},
		{"undefined flags", corrupt(t, 6, 0xFE), ErrBadFlags},
		{"flipped payload byte", corrupt(t, HeaderSize+2, 'X'), ErrChecksum},
		{"flipped crc byte", corrupt(t, 20, valid[20]+1), ErrChecksum},
		{"torn header", valid[:HeaderSize-3], ErrTruncated},
		{"torn payload", valid[:len(valid)-2], ErrTruncated},
		{"empty-after-header truncation", valid[:HeaderSize], ErrTruncated},
	}
	for _, tc := range cases {
		_, err := ReadFrame(bytes.NewReader(tc.data), MaxPayload)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestFrameLengthLimit asserts a hostile declared length is rejected with
// ErrFrameTooLarge before any payload allocation, both at the protocol
// bound and at a caller-supplied tighter bound.
func TestFrameLengthLimit(t *testing.T) {
	enc := AppendFrame(nil, Frame{Type: TypePing, Request: 1})
	binary.LittleEndian.PutUint32(enc[16:], MaxPayload+1)
	if _, err := ReadFrame(bytes.NewReader(enc), MaxPayload); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized declared length: got %v, want ErrFrameTooLarge", err)
	}

	// A tighter caller bound rejects frames the protocol bound would admit.
	small := AppendFrame(nil, Frame{Type: TypeJoin, Request: 1, Payload: make([]byte, 512)})
	if _, err := ReadFrame(bytes.NewReader(small), 256); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("caller bound: got %v, want ErrFrameTooLarge", err)
	}

	// The rejection must happen before allocation: run the decode under an
	// allocation budget far below the declared 1 MiB payload.
	avg := testing.AllocsPerRun(100, func() {
		_, _ = ReadFrame(bytes.NewReader(enc), MaxPayload) //nolint — error asserted above
	})
	if avg > 8 {
		t.Fatalf("oversized frame rejection allocated %.1f times per run", avg)
	}
}

func TestWriteFramePanicsOnOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFrame accepted a payload beyond MaxPayload")
		}
	}()
	AppendFrame(nil, Frame{Type: TypeJoin, Payload: make([]byte, MaxPayload+1)})
}
