package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame is one protocol frame: the decoded header fields plus the raw
// message payload its Type describes. When Flags carries FlagTraceContext,
// Trace holds the stripped trace-context extension and Payload is the
// message alone — encoders and decoders keep the two separated so message
// codecs never see the extension.
type Frame struct {
	Type    uint8
	Flags   uint16
	Request uint64
	Trace   TraceContext
	Payload []byte
}

// AppendFrame appends the frame's canonical encoding to dst and returns the
// extended slice. A frame whose Flags set FlagTraceContext encodes as
// protocol version VersionTrace with the trace-context extension prefixed
// to the payload; any other frame encodes as version 1, byte-identical to
// what this package has always produced. It panics if payload plus
// extension exceed MaxPayload — callers construct payloads with the bounded
// message encoders, so an oversized frame is a programming error, not an
// input condition.
func AppendFrame(dst []byte, f Frame) []byte {
	version := uint8(Version)
	ext := 0
	if f.Flags&FlagTraceContext != 0 {
		version = VersionTrace
		ext = traceExtSize
	}
	if len(f.Payload)+ext > MaxPayload {
		panic(fmt.Sprintf("wire: frame payload %d exceeds MaxPayload", len(f.Payload)+ext))
	}
	off := len(dst)
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = version
	hdr[5] = f.Type
	binary.LittleEndian.PutUint16(hdr[6:], f.Flags)
	binary.LittleEndian.PutUint64(hdr[8:], f.Request)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(f.Payload)+ext))
	dst = append(dst, hdr[:]...)
	if ext != 0 {
		var tc [traceExtSize]byte
		binary.LittleEndian.PutUint64(tc[0:], f.Trace.ID)
		binary.LittleEndian.PutUint16(tc[8:], f.Trace.Flags)
		// tc[10:12] reserved, zero.
		dst = append(dst, tc[:]...)
	}
	dst = append(dst, f.Payload...)
	sum := crc32.Update(0, castagnoli, dst[off+0:off+20])
	sum = crc32.Update(sum, castagnoli, dst[off+HeaderSize:])
	binary.LittleEndian.PutUint32(dst[off+20:off+24], sum)
	return dst
}

// WriteFrame writes the frame's canonical encoding to w in one Write call,
// so a frame is never interleaved with another writer's frame as long as
// callers serialize Write calls (both peers guard the connection with a
// write mutex).
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, HeaderSize+traceExtSize+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame from r. maxPayload bounds the
// payload allocation (values ≤ 0 or > MaxPayload mean MaxPayload); a header
// declaring more fails with ErrFrameTooLarge before any allocation, so
// arbitrary input can never force an over-allocation.
//
// A clean end of stream before any header byte returns io.EOF untouched;
// a stream that ends mid-frame returns ErrTruncated. All other failures
// wrap the typed errors of this package. After any error except io.EOF the
// stream must be considered out of sync and the connection closed.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 || maxPayload > MaxPayload {
		maxPayload = MaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return Frame{}, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	v := hdr[4]
	if v != Version && v != VersionTrace {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	f := Frame{
		Type:    hdr[5],
		Flags:   binary.LittleEndian.Uint16(hdr[6:]),
		Request: binary.LittleEndian.Uint64(hdr[8:]),
	}
	if !validType(f.Type) {
		return Frame{}, fmt.Errorf("%w: 0x%02x", ErrUnknownType, f.Type)
	}
	defined := uint16(flagsDefined)
	if v == VersionTrace {
		defined |= FlagTraceContext
	}
	if bad := f.Flags &^ defined; bad != 0 {
		return Frame{}, fmt.Errorf("%w: 0x%04x", ErrBadFlags, bad)
	}
	// The version byte and the flag bit must agree: the frame's shape is
	// determined by the header alone, with no legal ambiguous encoding.
	if v == VersionTrace && f.Flags&FlagTraceContext == 0 {
		return Frame{}, fmt.Errorf("%w: version %d frame without FlagTraceContext", ErrBadTrace, v)
	}
	n := binary.LittleEndian.Uint32(hdr[16:])
	if n > uint32(maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxPayload)
	}
	want := binary.LittleEndian.Uint32(hdr[20:])
	sum := crc32.Update(0, castagnoli, hdr[:20])
	payload := []byte(nil)
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
		sum = crc32.Update(sum, castagnoli, payload)
	}
	if sum != want {
		return Frame{}, fmt.Errorf("%w: computed 0x%08x, frame claims 0x%08x", ErrChecksum, sum, want)
	}
	if f.Flags&FlagTraceContext != 0 {
		if len(payload) < traceExtSize {
			return Frame{}, fmt.Errorf("%w: payload of %d bytes below the %d-byte extension", ErrBadTrace, len(payload), traceExtSize)
		}
		f.Trace.ID = binary.LittleEndian.Uint64(payload[0:])
		f.Trace.Flags = binary.LittleEndian.Uint16(payload[8:])
		if bad := f.Trace.Flags &^ traceFlagsDefined; bad != 0 {
			return Frame{}, fmt.Errorf("%w: undefined trace flag bits 0x%04x", ErrBadTrace, bad)
		}
		if rsv := binary.LittleEndian.Uint16(payload[10:]); rsv != 0 {
			return Frame{}, fmt.Errorf("%w: non-zero reserved bytes 0x%04x", ErrBadTrace, rsv)
		}
		payload = payload[traceExtSize:]
		if len(payload) == 0 {
			payload = nil
		}
	}
	f.Payload = payload
	return f, nil
}
