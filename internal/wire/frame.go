package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame is one protocol frame: the decoded header fields plus the raw
// message payload its Type describes.
type Frame struct {
	Type    uint8
	Flags   uint16
	Request uint64
	Payload []byte
}

// AppendFrame appends the frame's canonical encoding to dst and returns the
// extended slice. It panics if the payload exceeds MaxPayload — callers
// construct payloads with the bounded message encoders, so an oversized
// frame is a programming error, not an input condition.
func AppendFrame(dst []byte, f Frame) []byte {
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("wire: frame payload %d exceeds MaxPayload", len(f.Payload)))
	}
	off := len(dst)
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	hdr[5] = f.Type
	binary.LittleEndian.PutUint16(hdr[6:], f.Flags)
	binary.LittleEndian.PutUint64(hdr[8:], f.Request)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	sum := crc32.Update(0, castagnoli, dst[off:off+20])
	sum = crc32.Update(sum, castagnoli, f.Payload)
	binary.LittleEndian.PutUint32(dst[off+20:off+24], sum)
	return dst
}

// WriteFrame writes the frame's canonical encoding to w in one Write call,
// so a frame is never interleaved with another writer's frame as long as
// callers serialize Write calls (both peers guard the connection with a
// write mutex).
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(f.Payload)), f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame from r. maxPayload bounds the
// payload allocation (values ≤ 0 or > MaxPayload mean MaxPayload); a header
// declaring more fails with ErrFrameTooLarge before any allocation, so
// arbitrary input can never force an over-allocation.
//
// A clean end of stream before any header byte returns io.EOF untouched;
// a stream that ends mid-frame returns ErrTruncated. All other failures
// wrap the typed errors of this package. After any error except io.EOF the
// stream must be considered out of sync and the connection closed.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 || maxPayload > MaxPayload {
		maxPayload = MaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return Frame{}, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	if v := hdr[4]; v != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	f := Frame{
		Type:    hdr[5],
		Flags:   binary.LittleEndian.Uint16(hdr[6:]),
		Request: binary.LittleEndian.Uint64(hdr[8:]),
	}
	if !validType(f.Type) {
		return Frame{}, fmt.Errorf("%w: 0x%02x", ErrUnknownType, f.Type)
	}
	if bad := f.Flags &^ flagsDefined; bad != 0 {
		return Frame{}, fmt.Errorf("%w: 0x%04x", ErrBadFlags, bad)
	}
	n := binary.LittleEndian.Uint32(hdr[16:])
	if n > uint32(maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxPayload)
	}
	want := binary.LittleEndian.Uint32(hdr[20:])
	sum := crc32.Update(0, castagnoli, hdr[:20])
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
		}
		sum = crc32.Update(sum, castagnoli, f.Payload)
	}
	if sum != want {
		return Frame{}, fmt.Errorf("%w: computed 0x%08x, frame claims 0x%08x", ErrChecksum, sum, want)
	}
	return f, nil
}
