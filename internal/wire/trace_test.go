package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
	"time"

	"spatialjoin/internal/obs"
)

// refreshCRC recomputes a hand-mutated frame's checksum so the mutation
// under test is the only decode obstacle.
func refreshCRC(enc []byte) {
	sum := crc32.Update(0, castagnoli, enc[:20])
	sum = crc32.Update(sum, castagnoli, enc[HeaderSize:])
	binary.LittleEndian.PutUint32(enc[20:24], sum)
}

// sampleRemoteSpans is a small server-shaped span summary fixture.
func sampleRemoteSpans() []obs.RemoteSpan {
	return []obs.RemoteSpan{
		{Parent: -1, Name: "server", Start: 1, Dur: 5 * time.Millisecond},
		{Parent: 0, Name: "admission", Start: 2, Dur: time.Microsecond},
		{Parent: 0, Name: "select", Start: 2 * time.Microsecond, Dur: 4 * time.Millisecond,
			Attrs: []obs.Attr{obs.Str("strategy", "tree"), obs.Int("page_reads", 17)}},
		{Parent: 2, Name: "level", Start: 3 * time.Microsecond, Dur: time.Millisecond,
			Attrs: []obs.Attr{obs.Int("depth", 0), obs.Int("reads", 9)}},
		{Parent: 0, Name: "stream", Start: 5 * time.Millisecond,
			Attrs: []obs.Attr{obs.Int("frames", 2)}},
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	want := Frame{
		Type:    TypeJoin,
		Flags:   FlagTraceContext,
		Request: 42,
		Trace:   TraceContext{ID: 0x0123456789ABCDEF, Flags: TraceFlagSampled},
		Payload: []byte("join payload"),
	}
	enc := AppendFrame(nil, want)
	if enc[4] != VersionTrace {
		t.Fatalf("traced frame encoded version %d, want %d", enc[4], VersionTrace)
	}
	got, err := ReadFrame(bytes.NewReader(enc), MaxPayload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Flags != want.Flags || got.Request != want.Request ||
		got.Trace != want.Trace || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("round trip: %+v vs %+v", got, want)
	}
	// Bijectivity: the decoded frame re-encodes byte-identically.
	if reenc := AppendFrame(nil, got); !bytes.Equal(reenc, enc) {
		t.Fatalf("re-encode diverged:\n%x\n%x", reenc, enc)
	}
	// An untraced frame still encodes as version 1 — byte-identical to the
	// pre-extension protocol.
	plain := AppendFrame(nil, Frame{Type: TypeJoin, Request: 42, Payload: []byte("join payload")})
	if plain[4] != Version {
		t.Fatalf("untraced frame encoded version %d, want %d", plain[4], Version)
	}
}

func TestTracedFrameEmptyPayload(t *testing.T) {
	want := Frame{Type: TypePing, Flags: FlagTraceContext, Request: 7,
		Trace: TraceContext{ID: 99, Flags: TraceFlagSampled}}
	got, err := ReadFrame(bytes.NewReader(AppendFrame(nil, want)), MaxPayload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != want.Trace || len(got.Payload) != 0 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestTraceExtensionTypedErrors(t *testing.T) {
	traced := func() []byte {
		return AppendFrame(nil, Frame{
			Type: TypeSelect, Flags: FlagTraceContext, Request: 5,
			Trace:   TraceContext{ID: 1, Flags: TraceFlagSampled},
			Payload: []byte("p"),
		})
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"v2 without flag", func(enc []byte) []byte {
			binary.LittleEndian.PutUint16(enc[6:], 0)
			return enc
		}, ErrBadTrace},
		{"v1 with trace flag", func(enc []byte) []byte {
			enc[4] = Version
			return enc
		}, ErrBadFlags},
		{"version 3", func(enc []byte) []byte {
			enc[4] = 3
			return enc
		}, ErrVersion},
		{"undefined trace flags", func(enc []byte) []byte {
			enc[HeaderSize+9] = 0x80
			return enc
		}, ErrBadTrace},
		{"non-zero reserved", func(enc []byte) []byte {
			enc[HeaderSize+11] = 0x01
			return enc
		}, ErrBadTrace},
	}
	for _, tc := range cases {
		enc := tc.mutate(traced())
		refreshCRC(enc)
		if _, err := ReadFrame(bytes.NewReader(enc), MaxPayload); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Payload shorter than the extension: rebuild by hand so the header
	// declares the short length honestly.
	short := AppendFrame(nil, Frame{Type: TypePing, Request: 1, Payload: []byte{1, 2, 3}})
	short[4] = VersionTrace
	binary.LittleEndian.PutUint16(short[6:], FlagTraceContext)
	refreshCRC(short)
	if _, err := ReadFrame(bytes.NewReader(short), MaxPayload); !errors.Is(err, ErrBadTrace) {
		t.Errorf("short extension: got %v, want ErrBadTrace", err)
	}
}

// TestTracedClientAgainstOldServer asserts the interop gate: a decoder
// that only speaks version 1 (the pre-extension ReadFrame behavior,
// reproduced here by its version check) rejects a traced frame with
// ErrVersion rather than misreading the extension as message payload.
func TestOldPeerRejectsTracedFrame(t *testing.T) {
	enc := AppendFrame(nil, Frame{
		Type: TypeSelect, Flags: FlagTraceContext, Request: 5,
		Trace: TraceContext{ID: 1, Flags: TraceFlagSampled},
	})
	if v := enc[4]; v == Version {
		t.Fatalf("traced frame claims version %d; an old peer would misread it", v)
	}
}

func TestSpanSummaryRoundTrip(t *testing.T) {
	want := sampleRemoteSpans()
	enc := appendSpans(nil, want)
	b := buf{enc}
	got, err := decodeSpans(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spans round trip:\n%+v\n%+v", got, want)
	}
}

func TestDoneWithSpansRoundTrip(t *testing.T) {
	want := Done{
		Status:  StatusOK,
		Results: 3,
		Stats:   QueryStats{PageReads: 17},
		Spans:   sampleRemoteSpans(),
	}
	got, err := DecodeDone(EncodeDone(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n%+v\n%+v", got, want)
	}

	// A span-free Done still encodes byte-identically to the
	// pre-extension codec: nothing follows the message field.
	plain := Done{Status: StatusOK, Results: 1, Message: "m"}
	enc := EncodeDone(plain)
	wantLen := 2 + 8 + 5*8 + 2 + len(plain.Message)
	if len(enc) != wantLen {
		t.Fatalf("span-free Done encodes %d bytes, want %d", len(enc), wantLen)
	}
	back, err := DecodeDone(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Spans != nil {
		t.Fatalf("span-free Done decoded spans: %+v", back.Spans)
	}
}

func TestSpanSummaryBounds(t *testing.T) {
	// Encoding truncates; decoding rejects. Build an oversized summary and
	// assert the encoder clamps it under the decoder's bounds.
	big := make([]obs.RemoteSpan, MaxSpansPerDone+50)
	for i := range big {
		parent := int32(-1)
		if i > 0 {
			parent = 0
		}
		big[i] = obs.RemoteSpan{
			Parent: parent,
			Name:   strings.Repeat("n", 200),
			Start:  time.Duration(i),
			Dur:    1,
			Attrs: []obs.Attr{
				obs.Str(strings.Repeat("k", 100), strings.Repeat("v", 500)),
				obs.Int("a", 1), obs.Int("b", 2), obs.Int("c", 3), obs.Int("d", 4),
				obs.Int("e", 5), obs.Int("f", 6), obs.Int("g", 7), obs.Int("h", 8),
				obs.Int("dropped", 9),
			},
		}
	}
	b := buf{appendSpans(nil, big)}
	got, err := decodeSpans(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxSpansPerDone {
		t.Fatalf("encoder kept %d spans, want %d", len(got), MaxSpansPerDone)
	}
	for _, s := range got {
		if len(s.Name) > maxSpanNameLen {
			t.Fatalf("span name of %d bytes survived encoding", len(s.Name))
		}
		if len(s.Attrs) > MaxAttrsPerSpan {
			t.Fatalf("%d attrs survived encoding", len(s.Attrs))
		}
		for _, a := range s.Attrs {
			if len(a.Key) > maxSpanNameLen || len(a.Str) > maxAttrStrLen {
				t.Fatalf("oversized attr survived encoding: %q=%q", a.Key, a.Str)
			}
		}
	}

	// A hostile span count is rejected, typed.
	hostile := binary.LittleEndian.AppendUint16(nil, MaxSpansPerDone+1)
	hb := buf{hostile}
	if _, err := decodeSpans(&hb); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("hostile span count: got %v, want ErrBadPayload", err)
	}

	// A forward parent reference is rejected, typed.
	fwd := appendSpans(nil, []obs.RemoteSpan{{Parent: -1, Name: "a"}, {Parent: -1, Name: "b"}})
	binary.LittleEndian.PutUint32(fwd[2:], 1) // span 0 claims parent 1
	fb := buf{fwd}
	if _, err := decodeSpans(&fb); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("forward parent: got %v, want ErrBadPayload", err)
	}
}
