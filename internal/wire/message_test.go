package wire

import (
	"errors"
	"reflect"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
)

func TestSelectRequestRoundTrip(t *testing.T) {
	want := SelectRequest{
		Strategy:   StrategyTree,
		Op:         OpSpec{Code: OpWithinDistance, P1: 12.5},
		Collection: "lakes",
		Selector:   geom.NewRect(1, 2, 3, 4),
	}
	p, err := EncodeSelect(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSelect(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: %+v vs %+v", got, want)
	}
}

func TestJoinRequestRoundTrip(t *testing.T) {
	want := JoinRequest{
		Strategy: StrategyIndex,
		Op:       OpSpec{Code: OpDistanceBand, P1: 50, P2: 100},
		R:        "houses",
		S:        "lakes",
	}
	p, err := EncodeJoin(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJoin(p)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: %+v vs %+v", got, want)
	}
}

func TestBatchRoundTrips(t *testing.T) {
	ms := []core.Match{{R: 0, S: 3}, {R: 7, S: 7}, {R: 120, S: 4}}
	gotM, err := DecodeMatches(nil, EncodeMatches(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotM, ms) {
		t.Fatalf("matches: %v vs %v", gotM, ms)
	}
	if got, err := DecodeMatches(nil, EncodeMatches(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty matches: %v, %v", got, err)
	}

	ids := []int{0, 5, 9, 1 << 40}
	gotIDs, err := DecodeIDs(nil, EncodeIDs(ids))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotIDs, ids) {
		t.Fatalf("ids: %v vs %v", gotIDs, ids)
	}
}

func TestDoneRoundTrip(t *testing.T) {
	want := Done{
		Status:  StatusDegraded,
		Results: 42,
		Stats: QueryStats{
			FilterEvals: 1, ExactEvals: 2, PageReads: 3, IndexReads: 4, Downgrades: 1,
		},
		Message: "index page lost",
	}
	got, err := DecodeDone(EncodeDone(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %+v vs %+v", got, want)
	}
}

func TestMessageDecodeErrorsAreTyped(t *testing.T) {
	sel, err := EncodeSelect(SelectRequest{Collection: "c", Op: Overlaps()})
	if err != nil {
		t.Fatal(err)
	}
	jn, err := EncodeJoin(JoinRequest{R: "r", S: "s", Op: Overlaps()})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{1},
		sel[:len(sel)-1],
		append(append([]byte{}, sel...), 0), // trailing byte
		jn[:3],
	}
	for i, p := range bad {
		if _, err := DecodeSelect(p); !errors.Is(err, ErrBadPayload) {
			t.Errorf("select case %d: got %v, want ErrBadPayload", i, err)
		}
		if _, err := DecodeJoin(p); !errors.Is(err, ErrBadPayload) {
			t.Errorf("join case %d: got %v, want ErrBadPayload", i, err)
		}
	}
	done := EncodeDone(Done{Status: StatusOK, Message: "x"})
	for i, p := range [][]byte{nil, {1}, done[:len(done)-1], append(append([]byte{}, done...), 0)} {
		if _, err := DecodeDone(p); !errors.Is(err, ErrBadPayload) {
			t.Errorf("done case %d: got %v, want ErrBadPayload", i, err)
		}
	}
	// A batch whose count disagrees with its byte length is rejected.
	enc := EncodeMatches([]core.Match{{R: 1, S: 2}})
	enc[0] = 200
	if _, err := DecodeMatches(nil, enc); !errors.Is(err, ErrBadPayload) {
		t.Errorf("inflated match count: got %v, want ErrBadPayload", err)
	}
	if _, err := DecodeIDs(nil, enc); !errors.Is(err, ErrBadPayload) {
		t.Errorf("ids with pair-batch shape: got %v, want ErrBadPayload", err)
	}
}

func TestOpSpecOperators(t *testing.T) {
	cases := []struct {
		spec OpSpec
		name string
	}{
		{OpSpec{Code: OpOverlaps}, "overlaps"},
		{OpSpec{Code: OpWithinDistance, P1: 10}, "within_distance(10)"},
		{OpSpec{Code: OpDistanceBand, P1: 50, P2: 100}, "distance_band(50,100)"},
		{OpSpec{Code: OpIncludes}, "includes"},
		{OpSpec{Code: OpContainedIn}, "contained_in"},
		{OpSpec{Code: OpNorthwestOf}, "northwest_of"},
	}
	for _, tc := range cases {
		op, err := tc.spec.Operator()
		if err != nil {
			t.Fatalf("code %d: %v", tc.spec.Code, err)
		}
		if op.Name() != tc.name {
			t.Errorf("code %d: name %q, want %q", tc.spec.Code, op.Name(), tc.name)
		}
	}
	if _, err := (OpSpec{Code: 200}).Operator(); !errors.Is(err, ErrBadPayload) {
		t.Errorf("unknown op code: got %v, want ErrBadPayload", err)
	}
	if _, err := (OpSpec{Code: OpReachableWithin, P1: 5, P2: 2}).Operator(); err != nil {
		t.Errorf("reachable_within: %v", err)
	}
}

func TestNameBounds(t *testing.T) {
	long := string(make([]byte, maxNameLen+1))
	if _, err := EncodeSelect(SelectRequest{Collection: long, Op: Overlaps()}); err == nil {
		t.Error("overlong collection name encoded")
	}
	if _, err := EncodeJoin(JoinRequest{R: "r", S: "", Op: Overlaps()}); err == nil {
		t.Error("empty collection name encoded")
	}
}
