// Package wire is the binary framed protocol of the spatial query server:
// fixed-layout length-prefixed frames — magic, version, type, flags, a
// request ID for pipelining, and a CRC-32C (Castagnoli) checksum covering
// header and payload — carrying SELECT/JOIN requests and streamed match-set
// responses.
//
// Frame layout (little-endian, 24-byte header):
//
//	offset size  field
//	0      4     magic "SJW1" (0x31574A53 LE)
//	4      1     protocol version (1, or 2 with the trace-context extension)
//	5      1     frame type
//	6      2     flags (undefined bits are a decode error)
//	8      8     request ID (client-assigned; responses echo it)
//	16     4     payload length (≤ MaxPayload)
//	20     4     CRC-32C over header[0:20] ++ payload
//
// A version-2 frame sets FlagTraceContext and opens its payload with the
// fixed 12-byte trace-context extension (u64 trace ID, u16 trace flags,
// u16 reserved zero); ReadFrame strips it into Frame.Trace so message
// decoders see only the message payload. Version 1 never carries the
// extension — an untraced conversation is byte-identical to one with a
// peer that predates it.
//
// A connection is a full-duplex stream of frames. The client assigns a
// non-zero request ID to every request and may pipeline: many requests may
// be outstanding at once, and response frames for different requests may
// interleave — the request ID is the only correlation. A query's response
// is zero or more Matches/IDs batch frames followed by exactly one Done
// frame carrying the typed status and the query's measured work. A Done
// frame with request ID 0 is a connection-level verdict (e.g. SERVER_BUSY
// at accept when the server is over its connection limit) and the peer
// closes the connection after sending it.
//
// Every decode failure is a typed error (ErrBadMagic, ErrVersion,
// ErrBadFlags, ErrUnknownType, ErrFrameTooLarge, ErrChecksum,
// ErrTruncated, ErrBadPayload, ErrBadTrace) so harnesses can assert the
// exact failure shape, and the decoder never allocates more than
// MaxPayload bytes no matter what length a hostile header declares.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// Magic opens every frame: "SJW1" in stream order.
const Magic uint32 = 0x31574A53 // 'S' 'J' 'W' '1' little-endian

// Version is the baseline protocol version this package speaks. Frames
// carrying neither it nor VersionTrace are rejected with ErrVersion.
const Version = 1

// VersionTrace is the protocol version of frames carrying the trace-context
// extension (FlagTraceContext). The version byte is the interop gate: a
// peer that only speaks version 1 rejects a traced frame with the clean
// typed ErrVersion instead of misreading its payload, while untraced
// traffic stays version 1 in both directions — old and new peers
// interoperate unchanged until a caller actually arms tracing.
const VersionTrace = 2

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 24

// MaxPayload bounds a frame's payload. The decoder rejects larger declared
// lengths before allocating, so arbitrary input can never force an
// over-allocation.
const MaxPayload = 1 << 20

// Frame types. Requests flow client → server; responses carry the high bit.
const (
	// TypePing is an empty liveness request; the server answers TypePong.
	TypePing uint8 = 0x01
	// TypeSelect carries a SelectRequest payload.
	TypeSelect uint8 = 0x02
	// TypeJoin carries a JoinRequest payload.
	TypeJoin uint8 = 0x03
	// TypeReplTail carries a ReplTailRequest payload: a replica asking the
	// primary to stream WAL records from an LSN.
	TypeReplTail uint8 = 0x04
	// TypeSnapDelta carries a SnapDeltaRequest payload: a replica asking
	// for a snapshot of the pages dirtied since an LSN (0 = full snapshot).
	TypeSnapDelta uint8 = 0x05

	// TypePong is the empty answer to TypePing.
	TypePong uint8 = 0x81
	// TypeMatches is one streamed batch of (R, S) match pairs of a JOIN.
	TypeMatches uint8 = 0x82
	// TypeIDs is one streamed batch of object IDs of a SELECT.
	TypeIDs uint8 = 0x83
	// TypeDone terminates a query's response: typed status, result count,
	// and the query's measured work (see Done).
	TypeDone uint8 = 0x84
	// TypeWALChunk is one streamed batch of raw WAL records answering a
	// TypeReplTail request.
	TypeWALChunk uint8 = 0x85
	// TypeSnapChunk is one streamed slice of an encoded snapshot (full or
	// delta) answering a TypeSnapDelta request.
	TypeSnapChunk uint8 = 0x86
)

// Flags.
const (
	// FlagShed marks a Done frame for a query (or connection, with request
	// ID 0) the server rejected before executing anything: admission
	// control shed it (SERVER_BUSY) or the server is draining
	// (SHUTTING_DOWN). A shed query did zero engine work.
	FlagShed uint16 = 1 << 0

	// FlagTraceContext marks a frame whose payload opens with the
	// trace-context extension (see TraceContext). Only valid on
	// VersionTrace frames: the flag without the version (or the version
	// without the flag) is a decode error, so a frame's shape is always
	// determined by its header alone.
	FlagTraceContext uint16 = 1 << 1

	// flagsDefined masks the flag bits version 1 defines; any other set
	// bit fails decoding with ErrBadFlags. VersionTrace frames may
	// additionally set FlagTraceContext.
	flagsDefined = FlagShed
)

// TraceContext is the optional trace-context frame extension: when a
// frame's header sets FlagTraceContext, its payload opens with this fixed
// 12-byte block (little-endian u64 trace ID, u16 trace flags, u16 reserved
// zero), which ReadFrame strips into Frame.Trace before the message payload
// is seen by any decoder. The trace ID is the caller's obs.Trace identity;
// the server adopts it so spans recorded on both sides of the wire carry
// one ID.
type TraceContext struct {
	ID    uint64
	Flags uint16
}

// Trace-context flag bits.
const (
	// TraceFlagSampled marks a trace the caller is actually recording; the
	// server exports its span summary on the DONE verdict only for sampled
	// traces.
	TraceFlagSampled uint16 = 1 << 0

	// traceFlagsDefined masks the trace-context flag bits this version
	// defines; any other set bit fails decoding with ErrBadTrace.
	traceFlagsDefined = TraceFlagSampled
)

// traceExtSize is the encoded TraceContext length prefixing the payload.
const traceExtSize = 12

// Status is the typed verdict of a Done frame.
type Status uint8

// Status codes.
const (
	// StatusOK: the query ran to completion; the streamed results are the
	// exact canonical answer.
	StatusOK Status = 0
	// StatusDegraded: permanent index loss forced the engine down to the
	// scan strategy (Stats.Downgrades > 0) — the streamed results are
	// still the exact canonical answer, only the cost changed.
	StatusDegraded Status = 1
	// StatusTimeout: the query's deadline (Config.QueryTimeout or the
	// session's context) expired mid-descent; no trustworthy results.
	StatusTimeout Status = 2
	// StatusServerBusy: admission control shed the query (or connection)
	// without executing it.
	StatusServerBusy Status = 3
	// StatusShuttingDown: the server is draining and takes no new work.
	StatusShuttingDown Status = 4
	// StatusBadRequest: the request payload did not decode or named an
	// unknown operator or strategy.
	StatusBadRequest Status = 5
	// StatusNotFound: the request named a collection (or required join
	// index) the server does not have.
	StatusNotFound Status = 6
	// StatusInternal: a typed storage fault degradation could not route
	// around, or any other engine failure.
	StatusInternal Status = 7
	// StatusStale: a replica refused the query because its replication lag
	// exceeded the configured bound; retry against the primary or wait for
	// the replica to catch up. A stale query did zero engine work.
	StatusStale Status = 8
	// StatusGone: the primary can no longer serve the requested WAL tail —
	// a checkpoint truncated the log above the replica's ask. The replica
	// must fall back to a snapshot-delta resync.
	StatusGone Status = 9
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusDegraded:
		return "DEGRADED"
	case StatusTimeout:
		return "TIMEOUT"
	case StatusServerBusy:
		return "SERVER_BUSY"
	case StatusShuttingDown:
		return "SHUTTING_DOWN"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusInternal:
		return "INTERNAL"
	case StatusStale:
		return "STALE"
	case StatusGone:
		return "GONE"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Label renders the status as a lowercase metrics label value, matching
// the engine's outcome-label convention (ok, degraded, timeout, ...).
func (s Status) Label() string {
	return strings.ToLower(s.String())
}

// Typed decode errors. Harnesses assert with errors.Is; every failure of
// ReadFrame and the message decoders wraps exactly one of these.
var (
	// ErrBadMagic: the stream's next four bytes are not the frame magic —
	// the connection is out of sync and must be closed.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrVersion: the frame carries a protocol version this package does
	// not speak.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrBadFlags: the frame sets flag bits this version does not define.
	ErrBadFlags = errors.New("wire: undefined flag bits")
	// ErrUnknownType: the frame type byte is not one this version defines.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrFrameTooLarge: the header declares a payload beyond MaxPayload;
	// rejected before any allocation.
	ErrFrameTooLarge = errors.New("wire: declared payload exceeds limit")
	// ErrChecksum: the CRC-32C over header and payload does not verify —
	// the frame was torn or corrupted in flight.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTruncated: the stream ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadPayload: a frame's payload does not decode as the message its
	// type promises.
	ErrBadPayload = errors.New("wire: malformed message payload")
	// ErrBadTrace: the frame's trace-context extension is malformed — a
	// VersionTrace frame without FlagTraceContext, a payload too short for
	// the extension, undefined trace-flag bits, or non-zero reserved bytes.
	ErrBadTrace = errors.New("wire: malformed trace context")
)

// castagnoli is the CRC-32C table every frame checksum uses — the same
// polynomial the storage layer's page checksums use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// validType reports whether t is a frame type this version defines.
func validType(t uint8) bool {
	switch t {
	case TypePing, TypeSelect, TypeJoin, TypeReplTail, TypeSnapDelta,
		TypePong, TypeMatches, TypeIDs, TypeDone, TypeWALChunk, TypeSnapChunk:
		return true
	}
	return false
}

// StatusError is the error shape the client surfaces for a non-OK,
// non-DEGRADED Done frame: the typed status plus the server's diagnostic
// message.
type StatusError struct {
	Status  Status
	Message string
}

// Error implements the error interface.
func (e *StatusError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("wire: server returned %v", e.Status)
	}
	return fmt.Sprintf("wire: server returned %v: %s", e.Status, e.Message)
}
