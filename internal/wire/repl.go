package wire

import (
	"encoding/binary"
	"fmt"
)

// Replication messages. A replica opens a stream with TypeReplTail or
// TypeSnapDelta; the primary answers with a run of TypeWALChunk or
// TypeSnapChunk frames (echoing the request ID) closed by a TypeDone frame
// whose status says how the stream ended: OK for a complete snapshot, GONE
// for a tail ask the log no longer reaches, SHUTTING_DOWN when the primary
// drains. A tail stream has no natural end — the primary keeps shipping
// chunks as the log grows until either side closes.

// MaxReplChunk bounds the data slice of one WALChunk or SnapChunk,
// comfortably under MaxPayload with the chunk headers on top.
const MaxReplChunk = 256 << 10

// ReplTailRequest asks the primary to stream WAL records starting at
// FromLSN, which must be a record boundary (the replica's durable end).
type ReplTailRequest struct {
	FromLSN uint64
}

// SnapDeltaRequest asks the primary for a snapshot covering the pages
// dirtied since the replica's last-applied LSN. SinceLSN 0 — or any LSN
// below the primary's tracking horizon — yields a full snapshot.
type SnapDeltaRequest struct {
	SinceLSN uint64
}

// WALChunk is one streamed batch of raw, CRC-checked WAL records:
// Records holds complete log records starting at stream offset BaseLSN.
// DurableLSN is the primary's durable end at ship time, so the replica can
// measure its lag even from a chunk that catches it up only partway.
type WALChunk struct {
	BaseLSN    uint64
	DurableLSN uint64
	Records    []byte
}

// SnapChunk is one streamed slice of an encoded snapshot: Data holds
// bytes [Offset, Offset+len(Data)) of the snapshot stream, whose own
// magic says whether it is a full device image or a page delta.
type SnapChunk struct {
	Offset uint64
	Data   []byte
}

// EncodeReplTail renders a TypeReplTail payload.
func EncodeReplTail(q ReplTailRequest) []byte {
	return binary.LittleEndian.AppendUint64(nil, q.FromLSN)
}

// DecodeReplTail parses a TypeReplTail payload.
func DecodeReplTail(p []byte) (ReplTailRequest, error) {
	b := buf{p}
	var q ReplTailRequest
	var err error
	if q.FromLSN, err = b.u64(); err != nil {
		return q, err
	}
	return q, b.done()
}

// EncodeSnapDelta renders a TypeSnapDelta payload.
func EncodeSnapDelta(q SnapDeltaRequest) []byte {
	return binary.LittleEndian.AppendUint64(nil, q.SinceLSN)
}

// DecodeSnapDelta parses a TypeSnapDelta payload.
func DecodeSnapDelta(p []byte) (SnapDeltaRequest, error) {
	b := buf{p}
	var q SnapDeltaRequest
	var err error
	if q.SinceLSN, err = b.u64(); err != nil {
		return q, err
	}
	return q, b.done()
}

// checkChunk validates a chunk's data slice for encoding.
func checkChunk(n int) error {
	if n > MaxReplChunk {
		return fmt.Errorf("wire: repl chunk of %d bytes exceeds %d", n, MaxReplChunk)
	}
	return nil
}

// EncodeWALChunk renders a TypeWALChunk payload.
func EncodeWALChunk(c WALChunk) ([]byte, error) {
	if err := checkChunk(len(c.Records)); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, 8+8+4+len(c.Records))
	dst = binary.LittleEndian.AppendUint64(dst, c.BaseLSN)
	dst = binary.LittleEndian.AppendUint64(dst, c.DurableLSN)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Records)))
	return append(dst, c.Records...), nil
}

// DecodeWALChunk parses a TypeWALChunk payload. Records aliases the input:
// frame payloads are freshly allocated per frame, so the alias is safe and
// saves a copy on the hot shipping path.
func DecodeWALChunk(p []byte) (WALChunk, error) {
	b := buf{p}
	var c WALChunk
	var err error
	if c.BaseLSN, err = b.u64(); err != nil {
		return c, err
	}
	if c.DurableLSN, err = b.u64(); err != nil {
		return c, err
	}
	n, err := b.u32()
	if err != nil {
		return c, err
	}
	if int64(n) > MaxReplChunk || int(n) != len(b.b) {
		return c, fmt.Errorf("%w: wal chunk claims %d record bytes over %d", ErrBadPayload, n, len(b.b))
	}
	c.Records = b.b
	return c, nil
}

// EncodeSnapChunk renders a TypeSnapChunk payload.
func EncodeSnapChunk(c SnapChunk) ([]byte, error) {
	if err := checkChunk(len(c.Data)); err != nil {
		return nil, err
	}
	dst := make([]byte, 0, 8+4+len(c.Data))
	dst = binary.LittleEndian.AppendUint64(dst, c.Offset)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Data)))
	return append(dst, c.Data...), nil
}

// DecodeSnapChunk parses a TypeSnapChunk payload. Data aliases the input,
// as in DecodeWALChunk.
func DecodeSnapChunk(p []byte) (SnapChunk, error) {
	b := buf{p}
	var c SnapChunk
	var err error
	if c.Offset, err = b.u64(); err != nil {
		return c, err
	}
	n, err := b.u32()
	if err != nil {
		return c, err
	}
	if int64(n) > MaxReplChunk || int(n) != len(b.b) {
		return c, fmt.Errorf("%w: snap chunk claims %d bytes over %d", ErrBadPayload, n, len(b.b))
	}
	c.Data = b.b
	return c, nil
}
