package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(a, b uint64) Key { return Key{Hi: a, Lo: b} }

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Fatal("order 2 must be rejected")
	}
	if _, err := New(3); err != nil {
		t.Fatalf("order 3 must be accepted: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(1)
}

func TestKeyLess(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{key(1, 0), key(2, 0), true},
		{key(2, 0), key(1, 9), false},
		{key(1, 1), key(1, 2), true},
		{key(1, 2), key(1, 1), false},
		{key(1, 1), key(1, 1), false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: %v < %v = %t", i, c.a, c.b, got)
		}
	}
}

func TestInsertContains(t *testing.T) {
	tr := MustNew(4)
	for i := uint64(0); i < 200; i++ {
		if !tr.Insert(key(i%10, i)) {
			t.Fatalf("insert %d reported duplicate", i)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := uint64(0); i < 200; i++ {
		if found, _ := tr.Contains(key(i%10, i)); !found {
			t.Fatalf("key %d missing", i)
		}
	}
	if found, _ := tr.Contains(key(99, 99)); found {
		t.Fatal("phantom key found")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	tr := MustNew(4)
	if !tr.Insert(key(1, 1)) {
		t.Fatal("first insert must succeed")
	}
	if tr.Insert(key(1, 1)) {
		t.Fatal("duplicate insert must report false")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := MustNew(100) // the paper's z
	for i := uint64(0); i < 50000; i++ {
		tr.Insert(key(i, 0))
	}
	// 50k keys at ≥50 keys/leaf: height 2 or 3.
	if tr.Height() < 2 || tr.Height() > 3 {
		t.Fatalf("height = %d for 50k keys at z=100", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	tr := MustNew(4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(key(i/10, i%10))
	}
	var got []Key
	tr.Range(key(3, 0), key(5, 9), func(k Key) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 30 {
		t.Fatalf("range returned %d keys, want 30", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatal("range out of order")
		}
	}
	if got[0] != key(3, 0) || got[len(got)-1] != key(5, 9) {
		t.Fatalf("range bounds wrong: %v .. %v", got[0], got[len(got)-1])
	}
}

func TestRangeEarlyStopAndEmpty(t *testing.T) {
	tr := MustNew(4)
	for i := uint64(0); i < 50; i++ {
		tr.Insert(key(0, i))
	}
	n := 0
	tr.Range(key(0, 0), key(0, 49), func(Key) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	n = 0
	tr.Range(key(5, 0), key(1, 0), func(Key) bool { n++; return true })
	if n != 0 {
		t.Fatal("inverted range must be empty")
	}
	n = 0
	tr.Range(key(7, 0), key(8, 0), func(Key) bool { n++; return true })
	if n != 0 {
		t.Fatal("out-of-data range must be empty")
	}
}

func TestRangeReportsVisits(t *testing.T) {
	tr := MustNew(4)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(key(i, 0))
	}
	v := tr.Range(key(0, 0), key(999, 0), func(Key) bool { return true })
	// Full scan must walk every leaf: at order 4, ≥ 1000/4 = 250 leaves.
	if v < 250 {
		t.Fatalf("full-range visits = %d, want ≥ 250", v)
	}
	v2 := tr.Range(key(500, 0), key(500, 0), func(Key) bool { return true })
	if v2 > tr.Height()+2 {
		t.Fatalf("point-range visits = %d, want ≈ height %d", v2, tr.Height())
	}
}

func TestAllAscending(t *testing.T) {
	tr := MustNew(5)
	rng := rand.New(rand.NewSource(1))
	want := make(map[Key]bool)
	for i := 0; i < 500; i++ {
		k := key(uint64(rng.Intn(50)), uint64(rng.Intn(1000)))
		if tr.Insert(k) {
			want[k] = true
		}
	}
	var got []Key
	tr.All(func(k Key) bool { got = append(got, k); return true })
	if len(got) != len(want) {
		t.Fatalf("All returned %d keys, want %d", len(got), len(want))
	}
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatal("All out of order")
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := MustNew(4)
	for i := uint64(0); i < 300; i++ {
		tr.Insert(key(i, i))
	}
	for i := uint64(0); i < 300; i += 3 {
		if !tr.Delete(key(i, i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		found, _ := tr.Contains(key(i, i))
		if i%3 == 0 && found {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%3 != 0 && !found {
			t.Fatalf("surviving key %d lost", i)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := MustNew(4)
	tr.Insert(key(1, 1))
	if tr.Delete(key(2, 2)) {
		t.Fatal("deleting absent key must report false")
	}
	if tr.Len() != 1 {
		t.Fatal("failed delete must not change size")
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := MustNew(3) // smallest legal order stresses merges hardest
	const n = 500
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for i := 0; i < n; i++ {
		tr.Insert(key(uint64(i), 0))
	}
	for step, i := range perm {
		if !tr.Delete(key(uint64(i), 0)) {
			t.Fatalf("delete of %d failed at step %d", i, step)
		}
		if step%50 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("emptied tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	tr.Insert(key(9, 9))
	if found, _ := tr.Contains(key(9, 9)); !found {
		t.Fatal("reuse after emptying failed")
	}
}

func TestRandomInsertDeleteAgainstModel(t *testing.T) {
	for _, order := range []int{3, 4, 7, 100} {
		tr := MustNew(order)
		rng := rand.New(rand.NewSource(int64(order)))
		model := make(map[Key]bool)
		for step := 0; step < 4000; step++ {
			k := key(uint64(rng.Intn(40)), uint64(rng.Intn(40)))
			if rng.Float64() < 0.55 {
				got := tr.Insert(k)
				want := !model[k]
				if got != want {
					t.Fatalf("order %d step %d: Insert(%v)=%t, model %t", order, step, k, got, want)
				}
				model[k] = true
			} else {
				got := tr.Delete(k)
				want := model[k]
				if got != want {
					t.Fatalf("order %d step %d: Delete(%v)=%t, model %t", order, step, k, got, want)
				}
				delete(model, k)
			}
			if step%500 == 0 {
				if err := tr.Validate(); err != nil {
					t.Fatalf("order %d step %d: %v", order, step, err)
				}
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("order %d: len %d != model %d", order, tr.Len(), len(model))
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickInsertedKeysAreFound(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := MustNew(5)
		uniq := make(map[Key]bool)
		for _, v := range raw {
			k := key(uint64(v%16), uint64(v/16))
			tr.Insert(k)
			uniq[k] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if found, _ := tr.Contains(k); !found {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangeMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		tr := MustNew(4)
		var keys []Key
		seen := make(map[Key]bool)
		for i := 0; i < 200; i++ {
			k := key(uint64(rng.Intn(30)), uint64(rng.Intn(30)))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
				tr.Insert(k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		lo := key(uint64(rng.Intn(30)), uint64(rng.Intn(30)))
		hi := key(uint64(rng.Intn(30)), uint64(rng.Intn(30)))
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		var want []Key
		for _, k := range keys {
			if !k.Less(lo) && !hi.Less(k) {
				want = append(want, k)
			}
		}
		var got []Key
		tr.Range(lo, hi, func(k Key) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: range %v..%v returned %d, want %d", trial, lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: range mismatch at %d", trial, i)
			}
		}
	}
}

func TestOrderAccessor(t *testing.T) {
	tr := MustNew(17)
	if tr.Order() != 17 {
		t.Fatalf("Order = %d", tr.Order())
	}
}
