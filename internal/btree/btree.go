// Package btree implements an order-z B+-tree over 128-bit composite keys.
// It is the substrate the paper's strategy III assumes for join indices
// (modeling assumption S4: "join indices are implemented using B+-trees"),
// with the order parameter playing the role of z (Table 2: number of index
// entries per page) and Height() the role of d.
//
// Keys are unique; a join index stores each (tuple, tuple) pair as one key.
// Leaves are chained for range scans, and search/range operations report how
// many nodes they visited so executors can charge page I/O.
package btree

import (
	"fmt"
)

// Key is a 128-bit composite key ordered lexicographically (Hi, then Lo).
// Join indices use Hi for the outer tuple ID and Lo for the inner.
type Key struct {
	Hi, Lo uint64
}

// Less reports whether k orders before o.
func (k Key) Less(o Key) bool {
	if k.Hi != o.Hi {
		return k.Hi < o.Hi
	}
	return k.Lo < o.Lo
}

// node is one B+-tree node. Interior nodes hold len(keys)+1 children, with
// keys[i] the smallest key in children[i+1]'s subtree. Leaves hold the keys
// themselves and chain via next.
type node struct {
	leaf bool
	keys []Key
	kids []*node
	next *node
}

// Tree is a B+-tree.
type Tree struct {
	order  int // maximum keys per node
	root   *node
	height int // levels below the root
	size   int
}

// New returns an empty B+-tree of the given order (maximum keys per node,
// the paper's z). Order must be at least 3.
func New(order int) (*Tree, error) {
	if order < 3 {
		return nil, fmt.Errorf("btree: order %d < 3", order)
	}
	return &Tree{order: order, root: &node{leaf: true}}, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(order int) *Tree {
	t, err := New(order)
	if err != nil {
		panic(err)
	}
	return t
}

// Order returns the tree's order z.
func (t *Tree) Order() int { return t.order }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels below the root (the paper's d minus
// one, since the paper counts pages on a root-to-leaf path).
func (t *Tree) Height() int { return t.height }

// minKeys returns the minimum number of keys a non-root node must hold.
func (t *Tree) minKeys() int { return t.order / 2 }

// searchLeaf descends to the leaf that would hold k, counting node visits.
func (t *Tree) searchLeaf(k Key) (*node, int) {
	n := t.root
	visits := 1
	for !n.leaf {
		n = n.kids[childIndex(n, k)]
		visits++
	}
	return n, visits
}

// childIndex returns the index of the child of n whose subtree covers k.
func childIndex(n *node, k Key) int {
	i := lowerBound(n.keys, k)
	if i < len(n.keys) && !k.Less(n.keys[i]) {
		return i + 1
	}
	return i
}

// lowerBound returns the first index whose key is ≥ k.
func lowerBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether k is stored, along with the number of nodes
// visited.
func (t *Tree) Contains(k Key) (found bool, visits int) {
	leaf, visits := t.searchLeaf(k)
	i := lowerBound(leaf.keys, k)
	return i < len(leaf.keys) && leaf.keys[i] == k, visits
}

// Insert adds k and reports whether it was newly inserted (false on
// duplicate).
func (t *Tree) Insert(k Key) bool {
	promoted, sibling, inserted := t.insert(t.root, k)
	if !inserted {
		return false
	}
	t.size++
	if sibling != nil {
		newRoot := &node{
			leaf: false,
			keys: []Key{promoted},
			kids: []*node{t.root, sibling},
		}
		t.root = newRoot
		t.height++
	}
	return true
}

// insert adds k under n. When n splits, it returns the promoted separator
// and the new right sibling.
func (t *Tree) insert(n *node, k Key) (promoted Key, sibling *node, inserted bool) {
	if n.leaf {
		i := lowerBound(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			return Key{}, nil, false
		}
		n.keys = append(n.keys, Key{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		if len(n.keys) <= t.order {
			return Key{}, nil, true
		}
		mid := len(n.keys) / 2
		s := &node{leaf: true, keys: append([]Key(nil), n.keys[mid:]...)}
		n.keys = n.keys[:mid:mid]
		s.next = n.next
		n.next = s
		return s.keys[0], s, true
	}
	ci := childIndex(n, k)
	p, s, ins := t.insert(n.kids[ci], k)
	if !ins {
		return Key{}, nil, false
	}
	if s == nil {
		return Key{}, nil, true
	}
	// Insert the promoted separator and new child into n.
	i := lowerBound(n.keys, p)
	n.keys = append(n.keys, Key{})
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = p
	n.kids = append(n.kids, nil)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = s
	if len(n.keys) <= t.order {
		return Key{}, nil, true
	}
	return t.splitInterior(n)
}

// splitInterior splits an overfull interior node, promoting the middle key.
func (t *Tree) splitInterior(n *node) (Key, *node, bool) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	sibling := &node{
		leaf: false,
		keys: append([]Key(nil), n.keys[mid+1:]...),
		kids: append([]*node(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.kids = n.kids[: mid+1 : mid+1]
	return promoted, sibling, true
}

// Range calls f for every stored key in [lo, hi] in ascending order,
// stopping early when f returns false. It returns the number of nodes
// visited (descent plus leaf-chain walk).
func (t *Tree) Range(lo, hi Key, f func(Key) bool) (visits int) {
	if hi.Less(lo) {
		return 0
	}
	leaf, v := t.searchLeaf(lo)
	visits = v
	for leaf != nil {
		for _, k := range leaf.keys {
			if k.Less(lo) {
				continue
			}
			if hi.Less(k) {
				return visits
			}
			if !f(k) {
				return visits
			}
		}
		leaf = leaf.next
		if leaf != nil {
			visits++
		}
	}
	return visits
}

// All calls f for every key in ascending order.
func (t *Tree) All(f func(Key) bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for n != nil {
		for _, k := range n.keys {
			if !f(k) {
				return
			}
		}
		n = n.next
	}
}
