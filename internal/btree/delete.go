package btree

import "fmt"

// Delete removes k, rebalancing by borrowing from or merging with siblings.
// It reports whether the key was present.
func (t *Tree) Delete(k Key) bool {
	if !t.delete(t.root, k) {
		return false
	}
	t.size--
	// Shrink the tree when the root is an interior node with one child.
	for !t.root.leaf && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
		t.height--
	}
	return true
}

// delete removes k from the subtree under n and rebalances n's children.
func (t *Tree) delete(n *node, k Key) bool {
	if n.leaf {
		i := lowerBound(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		return true
	}
	ci := childIndex(n, k)
	child := n.kids[ci]
	if !t.delete(child, k) {
		return false
	}
	if len(child.keys) >= t.minKeys() {
		return true
	}
	t.rebalance(n, ci)
	return true
}

// rebalance restores the minimum occupancy of n.kids[ci] by borrowing from a
// sibling or merging with one.
func (t *Tree) rebalance(n *node, ci int) {
	child := n.kids[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := n.kids[ci-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf {
				// Move left's last key over; separator becomes that key.
				k := left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.keys = append([]Key{k}, child.keys...)
				n.keys[ci-1] = child.keys[0]
			} else {
				// Rotate through the separator.
				child.keys = append([]Key{n.keys[ci-1]}, child.keys...)
				n.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.kids = append([]*node{left.kids[len(left.kids)-1]}, child.kids...)
				left.kids = left.kids[:len(left.kids)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.kids)-1 {
		right := n.kids[ci+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf {
				k := right.keys[0]
				right.keys = right.keys[1:]
				child.keys = append(child.keys, k)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				right.keys = right.keys[1:]
				child.kids = append(child.kids, right.kids[0])
				right.kids = right.kids[1:]
			}
			return
		}
	}
	// Merge with a sibling (prefer left).
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge combines n.kids[i] and n.kids[i+1] into n.kids[i], dropping
// separator n.keys[i].
func (t *Tree) merge(n *node, i int) {
	left, right := n.kids[i], n.kids[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
}

// Validate checks the B+-tree invariants: sorted keys, occupancy bounds,
// uniform leaf depth, correct separators, an intact leaf chain, and a key
// count matching Len().
func (t *Tree) Validate() error {
	// Structure walk.
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int, isRoot bool, lo, hi *Key) error
	walk = func(n *node, depth int, isRoot bool, lo, hi *Key) error {
		for i := 1; i < len(n.keys); i++ {
			if !n.keys[i-1].Less(n.keys[i]) {
				return fmt.Errorf("btree: unsorted keys at depth %d", depth)
			}
		}
		for _, k := range n.keys {
			if lo != nil && k.Less(*lo) {
				return fmt.Errorf("btree: key below subtree bound at depth %d", depth)
			}
			if hi != nil && !k.Less(*hi) {
				return fmt.Errorf("btree: key above subtree bound at depth %d", depth)
			}
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			return fmt.Errorf("btree: underfull node at depth %d: %d < %d", depth, len(n.keys), t.minKeys())
		}
		if len(n.keys) > t.order {
			return fmt.Errorf("btree: overfull node at depth %d: %d > %d", depth, len(n.keys), t.order)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.keys)
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("btree: interior at depth %d has %d kids for %d keys", depth, len(n.kids), len(n.keys))
		}
		for i, c := range n.kids {
			var clo, chi *Key
			if i > 0 {
				clo = &n.keys[i-1]
			} else {
				clo = lo
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			} else {
				chi = hi
			}
			if err := walk(c, depth+1, false, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: %d keys counted, Len() says %d", count, t.size)
	}
	if t.size > 0 && leafDepth != t.height {
		return fmt.Errorf("btree: leaf depth %d != Height() %d", leafDepth, t.height)
	}
	// Leaf chain must enumerate exactly the same keys, in order.
	chain := 0
	var prev *Key
	bad := false
	t.All(func(k Key) bool {
		if prev != nil && !prev.Less(k) {
			bad = true
			return false
		}
		kk := k
		prev = &kk
		chain++
		return true
	})
	if bad {
		return fmt.Errorf("btree: leaf chain out of order")
	}
	if chain != t.size {
		return fmt.Errorf("btree: leaf chain has %d keys, Len() says %d", chain, t.size)
	}
	return nil
}
