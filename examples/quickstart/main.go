// Quickstart: create a database, load two collections of rectangles, and
// compute a spatial join with each strategy, comparing their measured
// costs — the core workflow of the library in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
)

func main() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	parcels, err := db.CreateCollection("parcels")
	if err != nil {
		log.Fatal(err)
	}
	zones, err := db.CreateCollection("zones")
	if err != nil {
		log.Fatal(err)
	}

	// Load 400 land parcels and 60 larger planning zones.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		r := spatialjoin.NewRect(x, y, x+2+rng.Float64()*10, y+2+rng.Float64()*10)
		if _, err := parcels.Insert(r, fmt.Sprintf("parcel-%03d", i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		x, y := rng.Float64()*850, rng.Float64()*850
		r := spatialjoin.NewRect(x, y, x+40+rng.Float64()*80, y+40+rng.Float64()*80)
		if _, err := zones.Insert(r, fmt.Sprintf("zone-%02d", i)); err != nil {
			log.Fatal(err)
		}
	}

	// Which parcels overlap which zones? Run all three strategies.
	op := spatialjoin.Overlaps()
	if _, _, err := db.BuildJoinIndex(parcels, zones, op); err != nil {
		log.Fatal(err)
	}
	for _, strat := range []spatialjoin.Strategy{
		spatialjoin.ScanStrategy,
		spatialjoin.TreeStrategy,
		spatialjoin.IndexStrategy,
	} {
		if err := db.DropCache(); err != nil {
			log.Fatal(err)
		}
		pairs, stats, err := db.Join(parcels, zones, op, strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %4d pairs  %6d evals  %4d page reads  cost %8.0f\n",
			strat, len(pairs), stats.FilterEvals+stats.ExactEvals,
			stats.PageReads+stats.IndexReads, stats.Cost(1, 1000))
	}

	// A spatial selection: everything within 50 units of a query box.
	q := spatialjoin.NewRect(300, 300, 350, 350)
	ids, _, err := db.Select(parcels, q, spatialjoin.WithinDistance(50), spatialjoin.TreeStrategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parcels within 50 of %v: %d\n", q, len(ids))
}
