// Joinindexdemo illustrates the paper's central strategy-III trade-off:
// a precomputed join index answers joins nearly for free, but every insert
// afterwards pays a scan of the other relation to keep it current — so
// "in highly dynamic environments other strategies will catch up" (§2.1).
//
// The demo builds a join index, times (in cost-model units) a batch of
// queries under each strategy, then applies a batch of inserts and reports
// the maintenance bill.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
)

const (
	cTheta = 1
	cIO    = 1000
)

func main() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	stores, err := db.CreateCollection("stores")
	if err != nil {
		log.Fatal(err)
	}
	depots, err := db.CreateCollection("depots")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	insertRandom := func(c *spatialjoin.Collection, tag string, n int) {
		for i := 0; i < n; i++ {
			x, y := rng.Float64()*980, rng.Float64()*980
			r := spatialjoin.NewRect(x, y, x+5+rng.Float64()*15, y+5+rng.Float64()*15)
			if _, err := c.Insert(r, fmt.Sprintf("%s-%03d", tag, i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	insertRandom(stores, "store", 400)
	insertRandom(depots, "depot", 120)

	op := spatialjoin.WithinDistance(60) // stores served by depots within 60

	// Build the index and report the up-front bill.
	ji, buildStats, err := db.BuildJoinIndex(stores, depots, op)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join index built: %d pairs, build cost %.0f (%d evaluations)\n",
		ji.Pairs(), buildStats.Cost(cTheta, cIO), buildStats.ExactEvals)

	// Query phase: the same join, ten times, per strategy.
	for _, strat := range []spatialjoin.Strategy{
		spatialjoin.ScanStrategy, spatialjoin.TreeStrategy, spatialjoin.IndexStrategy,
	} {
		var total float64
		var pairs int
		for q := 0; q < 10; q++ {
			if err := db.DropCache(); err != nil {
				log.Fatal(err)
			}
			ms, stats, err := db.Join(stores, depots, op, strat)
			if err != nil {
				log.Fatal(err)
			}
			pairs = len(ms)
			total += stats.Cost(cTheta, cIO)
		}
		fmt.Printf("%-10s 10 queries: %d pairs each, total cost %10.0f\n", strat, pairs, total)
	}

	// Update phase: 50 new stores. The index is maintained automatically;
	// each insert checks the new store against every depot (the U_III
	// path). Watch the pair count move.
	before := ji.Pairs()
	insertRandom(stores, "newstore", 50)
	fmt.Printf("after 50 inserts: index grew %d → %d pairs\n", before, ji.Pairs())
	fmt.Printf("each insert paid ~%d evaluations of maintenance (|depots| = %d)\n",
		depots.Len(), depots.Len())

	// The maintained index still answers exactly.
	idx, _, err := db.Join(stores, depots, op, spatialjoin.IndexStrategy)
	if err != nil {
		log.Fatal(err)
	}
	scan, _, err := db.Join(stores, depots, op, spatialjoin.ScanStrategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-update check: index %d pairs == scan %d pairs: %t\n",
		len(idx), len(scan), len(idx) == len(scan))
}
