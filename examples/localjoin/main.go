// Localjoin demonstrates the extension the paper proposes in its
// conclusions (§5): local join indices, "a mixture between the pure
// generalization trees (strategy II) and pure join indices (strategy III)"
// that the author conjectures is "optimal in terms of average performance".
//
// The demo sweeps the anchor level λ of a self-join over one collection:
// λ = 0 is a single global join index, λ beyond the leaves is a pure tree
// join, and the levels between trade precomputed pairs for live
// evaluations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"spatialjoin"
)

func main() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cells, err := db.CreateCollection("coverage-cells")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 600; i++ {
		x, y := rng.Float64()*950, rng.Float64()*950
		r := spatialjoin.NewRect(x, y, x+10+rng.Float64()*35, y+10+rng.Float64()*35)
		if _, err := cells.Insert(r, fmt.Sprintf("cell-%03d", i)); err != nil {
			log.Fatal(err)
		}
	}

	op := spatialjoin.Overlaps() // interference: which cells overlap which
	fmt.Printf("self-join of %d coverage cells (R-tree height %d)\n\n",
		cells.Len(), cells.IndexHeight())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "λ\tanchors\tstored pairs\tlive evals\tindex reads\tpairs\tcost\t\n")
	// The R-tree generalization view has IndexHeight()+1 levels (items are
	// one level below the leaf nodes); λ one past that is the pure tree
	// join.
	for lambda := 0; lambda <= cells.IndexHeight()+2; lambda++ {
		lji, err := db.BuildLocalJoinIndex(cells, op, lambda)
		if err != nil {
			log.Fatal(err)
		}
		pairs, stats, err := lji.SelfJoin()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t\n",
			lambda, lji.Anchors(), lji.StoredPairs(),
			stats.FilterEvals+stats.ExactEvals, stats.IndexReads,
			len(pairs), stats.Cost(1, 1000))
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nλ=0 ≙ strategy III (all precomputed); the last row ≙ strategy II (all live).")
}
