// Lakehouses reproduces the paper's motivating example (2):
//
//	"Find all houses within 10 kilometers from a lake"
//
// Lakes are polygons, houses are points; the query is the spatial join
// house ⋈θ lake with θ the travel-buffer operator. The example runs the
// join with the hierarchical tree strategy and the nested-loop baseline,
// prints the measured savings, and shows the degenerate single-lake case
// the paper contrasts it with (query (1): a spatial selection).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

func main() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	lakesCol, err := db.CreateCollection("lakes")
	if err != nil {
		log.Fatal(err)
	}
	housesCol, err := db.CreateCollection("houses")
	if err != nil {
		log.Fatal(err)
	}

	// A 100 km × 100 km region with 25 lakes and 1200 houses; coordinates
	// in kilometers.
	rng := rand.New(rand.NewSource(1993))
	world := geom.NewRect(0, 0, 100, 100)
	lakes, houses := datagen.LakesAndHouses(rng, 25, 1200, world)
	for _, l := range lakes {
		if _, err := lakesCol.Insert(l.Shape, l.Name); err != nil {
			log.Fatal(err)
		}
	}
	for i, h := range houses {
		if _, err := housesCol.Insert(h.Location, fmt.Sprintf("house-%04d ($%.0f)", i, h.Price)); err != nil {
			log.Fatal(err)
		}
	}

	// θ: within 10 km (closest points, via a 10-minute buffer at 1 km/min).
	within10km := spatialjoin.ReachableWithin(10, 1)

	if err := db.DropCache(); err != nil {
		log.Fatal(err)
	}
	pairs, treeStats, err := db.Join(housesCol, lakesCol, within10km, spatialjoin.TreeStrategy)
	if err != nil {
		log.Fatal(err)
	}
	lakeside := map[int]bool{}
	for _, p := range pairs {
		lakeside[p.R] = true
	}
	fmt.Printf("houses within 10 km of a lake: %d of %d (%d house-lake pairs)\n",
		len(lakeside), housesCol.Len(), len(pairs))

	if err := db.DropCache(); err != nil {
		log.Fatal(err)
	}
	_, scanStats, err := db.Join(housesCol, lakesCol, within10km, spatialjoin.ScanStrategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree join: %6d evals, cost %8.0f\n",
		treeStats.FilterEvals+treeStats.ExactEvals, treeStats.Cost(1, 1000))
	fmt.Printf("nested loop: %6d evals, cost %8.0f\n",
		scanStats.ExactEvals, scanStats.Cost(1, 1000))

	// Query (1)-style degenerate join: one fixed lake → a spatial
	// selection, answered by a single index search.
	shape, name, err := lakesCol.Get(0)
	if err != nil {
		log.Fatal(err)
	}
	ids, selStats, err := db.Select(housesCol, shape, within10km, spatialjoin.TreeStrategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection around %s: %d houses, %d evals\n",
		name, len(ids), selStats.FilterEvals+selStats.ExactEvals)
}
