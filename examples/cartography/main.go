// Cartography demonstrates application-defined generalization trees
// (Figure 3 of the paper): a map hierarchy of countries, states and cities
// where every node — including interior ones — is a user-relevant object
// that can qualify for query results.
//
// It generates a synthetic political map, then:
//  1. runs a spatial selection whose results span hierarchy levels,
//  2. computes a "to the Northwest of" self-join on the hierarchy, and
//  3. shows the Θ-filter pruning at work by comparing examined nodes
//     against the hierarchy size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin/internal/carto"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	hierarchy, feats, err := datagen.GenerateMap(rng, datagen.MapSpec{
		World:            geom.NewRect(0, 0, 1000, 600),
		Countries:        6,
		StatesPerCountry: 4,
		CitiesPerState:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("map: %d features (1 world, 6 countries, 24 states, 192 cities)\n", hierarchy.Len())

	// 1. Spatial selection: everything overlapping a survey window.
	window := geom.NewRect(120, 80, 380, 300)
	sel, err := core.Select(hierarchy.Tree(), window, pred.Overlaps{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	byKind := map[carto.Kind]int{}
	for _, id := range sel.Tuples {
		if f, ok := hierarchy.FeatureByTuple(id); ok {
			byKind[f.Kind]++
		}
	}
	fmt.Printf("window %v overlaps: %d countries, %d states, %d cities (and the world itself)\n",
		window, byKind[carto.KindCountry], byKind[carto.KindState], byKind[carto.KindCity])
	fmt.Printf("  examined %d of %d nodes (Θ pruning)\n",
		sel.Stats.NodesExamined, core.CountNodes(hierarchy.Tree()))

	// 2. Which cities lie to the northwest of which other cities? A
	// self-join with an asymmetric operator, restricted to city results.
	join, err := core.Join(hierarchy.Tree(), hierarchy.Tree(), pred.NorthwestOf{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	cityPairs := 0
	var sample string
	for _, m := range join.Pairs {
		fr, okR := hierarchy.FeatureByTuple(m.R)
		fs, okS := hierarchy.FeatureByTuple(m.S)
		if okR && okS && fr.Kind == carto.KindCity && fs.Kind == carto.KindCity {
			cityPairs++
			if sample == "" {
				sample = fmt.Sprintf("%s NW-of %s", fr.Name, fs.Name)
			}
		}
	}
	fmt.Printf("northwest-of self-join: %d total pairs, %d city-city pairs (e.g. %s)\n",
		len(join.Pairs), cityPairs, sample)

	// 3. Per-level census of the generated hierarchy.
	levels := map[int]int{}
	hierarchy.Walk(func(_ carto.Feature, level int) bool {
		levels[level]++
		return true
	})
	for l := 0; l <= 3; l++ {
		fmt.Printf("  level %d: %d features\n", l, levels[l])
	}
	_ = feats
}
