// Zordermerge demonstrates the one exception the paper allows to its
// "sort-merge does not work for spatial data" rule (§2.2): Orenstein's
// z-order sort-merge join for the overlaps operator — including the
// duplicate-reporting behaviour the paper notes ("any overlap is likely to
// be reported more than once ... once for each grid cell that the objects
// have in common") and the proximity loss of Figure 1 that breaks
// sort-merge for every other operator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/zorder"
)

func main() {
	world := geom.NewRect(0, 0, 1024, 1024)
	grid, err := zorder.NewGrid(world, 8) // 256×256 cells
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1's point: adjacent cells can be far apart along the curve.
	below := grid.CellIndex(geom.Pt(2, 511))
	above := grid.CellIndex(geom.Pt(2, 513))
	fmt.Printf("Figure 1: cells at (2,511) and (2,513) are neighbours on the map\n")
	fmt.Printf("          but %d apart in the Peano sequence of %d cells\n",
		diff(above, below), uint64(256)*256)

	// The overlaps join itself.
	rng := rand.New(rand.NewSource(3))
	rs := datagen.UniformRects(rng, 800, world, 4, 40)
	ss := datagen.UniformRects(rng, 800, world, 4, 40)

	raw, rawStats := grid.OverlapJoin(rs, ss, zorder.JoinOptions{Dedup: false, Exact: true})
	dedup, dedupStats := grid.OverlapJoin(rs, ss, zorder.JoinOptions{Dedup: true, Exact: true})
	brute := zorder.BruteOverlapJoin(rs, ss)

	fmt.Printf("\nz-order sort-merge overlap join of 800 × 800 rectangles:\n")
	fmt.Printf("  z elements:        %d (R) + %d (S)\n", rawStats.ElementsR, rawStats.ElementsS)
	fmt.Printf("  candidates:        %d (%d duplicate reports, as the paper predicts)\n",
		rawStats.Candidates, rawStats.Duplicates)
	fmt.Printf("  raw results:       %d (duplicates included)\n", len(raw))
	fmt.Printf("  deduplicated:      %d\n", len(dedup))
	fmt.Printf("  nested-loop check: %d  (exact tests in merge: %d vs %d brute-force)\n",
		len(brute), dedupStats.ExactTests, len(rs)*len(ss))
	if len(dedup) != len(brute) {
		log.Fatalf("MISMATCH: sort-merge %d vs brute force %d", len(dedup), len(brute))
	}
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
