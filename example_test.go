package spatialjoin_test

import (
	"fmt"
	"log"

	"spatialjoin"
)

// The paper's motivating query (2): find all houses within 10 kilometers
// from a lake, as a spatial join of a point collection against a polygon
// collection.
func ExampleDatabase_Join() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	houses, _ := db.CreateCollection("houses")
	lakes, _ := db.CreateCollection("lakes")

	houses.Insert(spatialjoin.Pt(12, 5), "17 Shore Drive")
	houses.Insert(spatialjoin.Pt(80, 80), "1 Remote Road")
	lakes.Insert(spatialjoin.RegularPolygon(spatialjoin.Pt(8, 4), 3, 8), "Lake Tahoe")

	pairs, _, err := db.Join(houses, lakes,
		spatialjoin.ReachableWithin(10, 1), spatialjoin.TreeStrategy)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range pairs {
		_, house, _ := houses.Get(m.R)
		_, lake, _ := lakes.Get(m.S)
		fmt.Printf("%s is within 10 km of %s\n", house, lake)
	}
	// Output:
	// 17 Shore Drive is within 10 km of Lake Tahoe
}

// A spatial selection — the degenerate join the paper contrasts with the
// general case — answered by the hierarchical SELECT algorithm.
func ExampleDatabase_Select() {
	db, err := spatialjoin.Open(spatialjoin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cities, _ := db.CreateCollection("cities")
	cities.Insert(spatialjoin.NewRect(10, 80, 14, 84), "Northwest City")
	cities.Insert(spatialjoin.NewRect(80, 10, 84, 14), "Southeast City")

	// Which cities are to the northwest of the reference point?
	ids, _, err := db.Select(cities, spatialjoin.Pt(50, 50),
		spatialjoin.DirectionOf(spatialjoin.DirSoutheast), spatialjoin.TreeStrategy)
	if err != nil {
		log.Fatal(err)
	}
	// DirSoutheast with the selector on the left: selector SE of city ⇔
	// city NW of selector.
	for _, id := range ids {
		_, name, _ := cities.Get(id)
		fmt.Println(name)
	}
	// Output:
	// Northwest City
}

// Orenstein's z-order sort-merge join, the one spatial operator where a
// sort-merge strategy works (§2.2).
func ExampleZOverlapJoin() {
	rs := []spatialjoin.Rect{spatialjoin.NewRect(0, 0, 10, 10)}
	ss := []spatialjoin.Rect{
		spatialjoin.NewRect(5, 5, 15, 15),
		spatialjoin.NewRect(50, 50, 60, 60),
	}
	pairs, err := spatialjoin.ZOverlapJoin(rs, ss, spatialjoin.NewRect(0, 0, 64, 64), 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pairs)
	// Output:
	// [{0 0}]
}

// Evaluating the paper's cost model at its published configuration
// (Table 3) reproduces the derived values and the strategy ranking.
func ExamplePaperParams() {
	prm := spatialjoin.PaperParams()
	fmt.Printf("N = %.0f, m = %.0f, d = %.0f\n", prm.N(), prm.Mtuples(), prm.D())

	m, err := spatialjoin.NewCostModel(prm, spatialjoin.DistUniform, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	sc := m.SelectCosts(6)
	fmt.Printf("clustered tree beats unclustered by %.1fx at p = 0.01\n", sc.CIIa/sc.CIIb)
	// Output:
	// N = 1111111, m = 5, d = 4
	// clustered tree beats unclustered by 9.7x at p = 0.01
}
