package spatialjoin

// FuzzRecovery drives the crash-sweep harness from fuzzed inputs: an
// arbitrary crash point (by physical write ordinal), worker count,
// group-commit policy, and checkpoint interval. The invariant is the
// tentpole guarantee itself — reopening a crashed device never errors,
// and the recovered database is byte-identical to a committed prefix of
// the workload for every strategy, wherever the checkpoint boundary
// falls. A final dimension ships a snapshot off the recovered database
// and requires the seeded replica to answer identically.

import (
	"bytes"
	"testing"

	"spatialjoin/internal/fault"
)

func FuzzRecovery(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(1), uint8(0), false)
	f.Add(int64(7), uint8(4), uint8(1), uint8(0), false)
	f.Add(int64(20), uint8(1), uint8(4), uint8(0), false)
	f.Add(int64(39), uint8(2), uint8(2), uint8(2), false)
	f.Add(int64(63), uint8(1), uint8(1), uint8(1), true)
	f.Add(int64(150), uint8(1), uint8(1), uint8(3), true)
	f.Add(int64(1000), uint8(3), uint8(8), uint8(2), false)
	f.Fuzz(func(t *testing.T, crashAt int64, workers, group, ckpt uint8, seedReplica bool) {
		w := 1 + int(workers%8)
		g := 1 + int(group%8)
		// Keep the ordinal in a range that can actually fire plus a margin
		// that exercises the no-crash path.
		n := 1 + crashAt%64
		if n < 0 {
			n = -n
		}
		// 0 = no checkpoints; 1..4 = a fuzzy checkpoint after every k-th
		// workload step, sliding the boundary across the whole workload.
		steps := stepsWithCheckpointEvery(int(ckpt % 5))
		cfg := crashConfig(w, g)
		if g > 1 {
			// Group commit relaxes the in-flight-step ambiguity to the
			// prefix property; the harness's two-candidate check only holds
			// for sync-every-commit, so fuzz the strict policy for state
			// equality and the relaxed one for crash-free recovery only.
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			db.FaultDisk().SetCrashAfterWrites(n)
			crashed := false
			func() {
				defer func() {
					if v := recover(); v != nil {
						if _, ok := fault.AsCrash(v); !ok {
							panic(v)
						}
						crashed = true
					}
				}()
				for _, st := range steps {
					if err := st.run(db); err != nil {
						t.Fatalf("step %s: %v", st.name, err)
					}
				}
			}()
			if !crashed {
				return
			}
			db.FaultDisk().Reboot()
			rdb, _, err := Reopen(cfg, db.Device())
			if err != nil {
				t.Fatalf("Reopen after group-commit crash at write %d: %v", n, err)
			}
			for j := -1; j < len(steps); j++ {
				m := crashModel{}
				if j >= 0 {
					m = steps[j].model
				}
				ok, err := stateMatches(rdb, m)
				if err != nil {
					t.Fatalf("verifying recovered state: %v", err)
				}
				if ok {
					return
				}
			}
			t.Fatalf("group-commit recovery at write %d matches no committed prefix", n)
		}
		runCrashCase(t, cfg, steps, t.Name(), func(fd *fault.Disk) {
			fd.SetCrashAfterWrites(n)
		})
		if seedReplica {
			fuzzSnapshotSeed(t, cfg, steps)
		}
	})
}

// fuzzSnapshotSeed runs the workload to completion (no crash), ships a
// snapshot, and requires the seeded replica to be byte-identical to the
// final model under every strategy.
func fuzzSnapshotSeed(t *testing.T, cfg Config, steps []crashStep) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatalf("step %s: %v", st.name, err)
		}
	}
	var buf bytes.Buffer
	if _, err := db.ExportSnapshot(&buf); err != nil {
		t.Fatalf("ExportSnapshot: %v", err)
	}
	replica, _, err := SeedFromSnapshot(cfg, &buf)
	if err != nil {
		t.Fatalf("SeedFromSnapshot: %v", err)
	}
	final := steps[len(steps)-1].model
	ok, err := stateMatches(replica, final)
	if err != nil {
		t.Fatalf("verifying seeded replica: %v", err)
	}
	if !ok {
		t.Fatal("snapshot-seeded replica does not match the source workload state")
	}
}
