package spatialjoin

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"time"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/join"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// Config sizes the simulated storage subsystem, mirroring the cost model's
// system parameters (Table 2), and the parallel execution engine.
type Config struct {
	// PageSize is the disk page size s in bytes.
	PageSize int
	// BufferPages is the buffer-pool capacity M in pages.
	BufferPages int
	// FillFactor is the average page utilization l in (0, 1].
	FillFactor float64
	// IndexOptions configures the per-collection R-tree indices.
	IndexOptions rtree.Options
	// JoinIndexOrder is the B+-tree order z for precomputed join indices.
	JoinIndexOrder int
	// Workers is the number of goroutines join strategies may use.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Whatever the setting, every strategy returns the identical,
	// canonically (R, S)-sorted match set.
	Workers int
	// QueryTimeout, when positive, bounds every Join/Select call with a
	// deadline; an expired deadline aborts the traversal mid-descent with
	// context.DeadlineExceeded. Contexts passed to JoinContext /
	// SelectContext compose with it (whichever fires first wins).
	QueryTimeout time.Duration
	// SlowQuery, when positive, is the latency threshold above which a
	// finished query additionally lands in the always-on flight recorder
	// as a slow_query event (see internal/obs: /debug/events, SIGQUIT
	// dump), carrying its trace ID when the query was traced.
	SlowQuery time.Duration
	// Fault, when non-nil, interposes a deterministic fault-injecting
	// device (see internal/fault) between the buffer pool and the disk.
	// Production-shaped code never sets this; chaos tests and the CLI
	// flags do.
	Fault *fault.Options
	// Retry, when non-nil, overrides the buffer pool's default retry
	// policy for physical page transfers.
	Retry *storage.RetryPolicy
	// WAL turns on crash-consistent updates through a write-ahead log:
	// every mutation (Insert, CreateCollection, BuildJoinIndex) becomes an
	// atomic transaction, and a crashed database reopened with Reopen
	// recovers to exactly the committed state.
	WAL bool
	// WALGroupCommit is the number of commits batched per log sync when
	// WAL is on. Values <= 1 force the log durable on every commit (the
	// safest, slowest policy); larger values amortize log writes at the
	// cost of losing the newest unsynced transactions in a crash — never
	// of corrupting the survivors.
	WALGroupCommit int
	// Metrics, when non-nil, exposes the engine through the registry:
	// buffer pool, disk, WAL, worker pool, and per-query counters are
	// registered at Open and sampled at scrape time, so query hot paths
	// stay unobserved-cost-free. Give each database its own registry —
	// samplers are keyed by metric name and a second database would
	// overwrite the first's. Serve it with obs.NewMux or WritePrometheus.
	Metrics *obs.Registry
}

// DefaultConfig returns a laptop-scale configuration with the paper's page
// geometry (s = 2000, l = 0.75), a 256-page buffer pool, and one join
// worker per available CPU.
func DefaultConfig() Config {
	return Config{
		PageSize:       2000,
		BufferPages:    256,
		FillFactor:     0.75,
		IndexOptions:   rtree.DefaultOptions(),
		JoinIndexOrder: 100,
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// Database is an embedded spatial database over a simulated paged disk.
// All collections share one buffer pool, so measured page I/O reflects real
// cache contention between the inner and outer relations of a join.
//
// Read-only operations (Join, Select, SelectStored, Get, IOStats) are safe
// to call from multiple goroutines concurrently. Mutations — Insert,
// CreateCollection, BuildJoinIndex, DropCache, ResetIOStats — require
// external serialization with respect to every other call.
type Database struct {
	cfg         Config
	pool        *storage.BufferPool
	faultDisk   *fault.Disk // nil unless Config.Fault was set
	wal         *wal.Log    // nil unless Config.WAL
	collections map[string]*Collection
	joinIndices map[string]*JoinIndex
	nextTxn     uint64
	poisoned    error // set when a WAL transaction died mid-flight
	closed      bool

	// mu guards the transaction bookkeeping a fuzzy checkpoint must see
	// atomically: nextTxn, activeTxns, the catalog maps' membership, and
	// each object's lastLSN stamp. Queries and in-transaction page work
	// never hold it.
	mu sync.Mutex
	// activeTxns maps every in-flight transaction to its begin LSN, from
	// before its begin record is appended until after its frames learn
	// their commit LSN (see runTxn).
	activeTxns map[uint64]wal.LSN

	ckptMu     sync.Mutex
	ckptTotals CheckpointTotals
	recovered  RecoveryStats // stats of the Reopen that produced this db
}

// Open creates an empty database.
func Open(cfg Config) (*Database, error) {
	if cfg.PageSize <= 0 || cfg.BufferPages <= 0 {
		return nil, fmt.Errorf("spatialjoin: page size and buffer pages must be positive")
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		return nil, fmt.Errorf("spatialjoin: fill factor %g out of (0,1]", cfg.FillFactor)
	}
	if cfg.JoinIndexOrder < 3 {
		return nil, fmt.Errorf("spatialjoin: join index order %d < 3", cfg.JoinIndexOrder)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("spatialjoin: negative worker count %d", cfg.Workers)
	}
	if cfg.QueryTimeout < 0 {
		return nil, fmt.Errorf("spatialjoin: negative query timeout %v", cfg.QueryTimeout)
	}
	var device storage.Device = storage.NewDisk(cfg.PageSize)
	var fd *fault.Disk
	if cfg.Fault != nil {
		fd = fault.Wrap(device, *cfg.Fault)
		device = fd
	}
	var lg *wal.Log
	if cfg.WAL {
		// The log claims the device's first file, before any collection
		// exists, so recovery can find it without a catalog.
		var err error
		lg, err = wal.Create(device, cfg.WALGroupCommit)
		if err != nil {
			return nil, err
		}
	}
	pool, err := storage.NewBufferPool(device, cfg.BufferPages)
	if err != nil {
		return nil, err
	}
	if cfg.Retry != nil {
		pool.SetRetryPolicy(*cfg.Retry)
	}
	if lg != nil {
		pool.SetWAL(lg)
	}
	db := &Database{
		cfg:         cfg,
		pool:        pool,
		faultDisk:   fd,
		wal:         lg,
		collections: make(map[string]*Collection),
		joinIndices: make(map[string]*JoinIndex),
		nextTxn:     1,
		activeTxns:  make(map[uint64]wal.LSN),
	}
	db.registerMetrics()
	return db, nil
}

// Metrics returns the registry configured at Open, or nil.
func (db *Database) Metrics() *obs.Registry { return db.cfg.Metrics }

// Collection is a named set of spatial objects, stored in a heap file and
// indexed by an R-tree generalization tree. The R-tree itself is rebuilt
// in memory, but every entry is also persisted to a backing index file on
// the simulated disk: that file is what a tree-strategy query scrubs —
// reads and checksum-verifies — before trusting the index, so a lost or
// corrupted index page is detected (and triggers degradation to the scan
// strategy) instead of silently shaping the result.
type Collection struct {
	db        *Database
	name      string
	rel       *relation.Relation
	table     join.Table
	index     *rtree.Tree
	indexFile *storage.HeapFile
	// lastLSN is the commit LSN of the newest transaction that touched the
	// collection's files; checkpoints record it in the manifest. Guarded by
	// db.mu.
	lastLSN wal.LSN
}

// collectionSchema is the fixed schema of every collection: an arbitrary
// payload string plus the spatial shape.
func collectionSchema() (relation.Schema, error) {
	return relation.NewSchema(
		relation.Column{Name: "payload", Type: relation.TypeString},
		relation.Column{Name: "shape", Type: relation.TypeGeometry},
	)
}

// CreateCollection makes an empty collection. Names must be unique. Under a
// WAL the creation is a transaction carrying the collection's catalog
// record, so recovery knows which files the collection owns.
func (db *Database) CreateCollection(name string) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("spatialjoin: empty collection name")
	}
	if _, dup := db.collections[name]; dup {
		return nil, fmt.Errorf("spatialjoin: collection %q already exists", name)
	}
	var c *Collection
	lsn, err := db.runTxn(func(txn uint64) error {
		sch, err := collectionSchema()
		if err != nil {
			return err
		}
		rel, err := relation.Create(db.pool, name, sch, db.cfg.FillFactor)
		if err != nil {
			return err
		}
		table, err := join.NewTable(rel, 1, db.pool)
		if err != nil {
			return err
		}
		index, err := rtree.New(db.cfg.IndexOptions)
		if err != nil {
			return err
		}
		indexFile, err := storage.NewHeapFile(db.pool, db.cfg.FillFactor)
		if err != nil {
			return err
		}
		c = &Collection{db: db, name: name, rel: rel, table: table, index: index, indexFile: indexFile}
		if db.wal != nil {
			_, err = db.wal.AppendCatalog(txn, wal.RecNewCollection,
				wal.EncodeNewCollection(wal.NewCollection{
					Name:      name,
					HeapFile:  rel.FileID(),
					IndexFile: indexFile.File(),
				}))
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	c.lastLSN = lsn
	db.collections[name] = c
	db.mu.Unlock()
	return c, nil
}

// Collection returns the named collection.
func (db *Database) Collection(name string) (*Collection, bool) {
	c, ok := db.collections[name]
	return c, ok
}

// ResetIOStats zeroes the shared buffer pool counters; measurements after a
// reset start from a warm (still-resident) cache. Use DropCache for cold
// measurements.
func (db *Database) ResetIOStats() { db.pool.ResetStats() }

// DropCache flushes and empties the buffer pool so the next query runs
// cold.
func (db *Database) DropCache() error { return db.pool.DropAll() }

// IOStats returns the shared pool's counters since the last reset.
func (db *Database) IOStats() storage.PoolStats { return db.pool.Stats() }

// DiskStats returns the device-level transfer counters, including injected
// fault attempts when the database runs over a fault device.
func (db *Database) DiskStats() storage.DiskStats { return db.pool.Disk().Stats() }

// FaultDisk returns the fault-injecting device the database runs over, or
// nil when Config.Fault was not set. Chaos tests use it to mark pages lost
// or torn mid-run.
func (db *Database) FaultDisk() *fault.Disk { return db.faultDisk }

// Device returns the simulated disk the database runs over. A crash
// harness keeps it across the crash and hands it to Reopen: the device is
// the only state that survives.
func (db *Database) Device() storage.Device { return db.pool.Disk() }

// Flush makes every committed change durable: the log first (write-ahead),
// then all committed dirty pages. Under a WAL it refuses to write back
// pages held by a failed in-flight transaction.
func (db *Database) Flush() error {
	if db.wal != nil {
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	return db.pool.Flush()
}

// Close shuts the database down cleanly: the log's group-commit buffer is
// forced durable (even when no dirty frame would otherwise demand a sync),
// every committed dirty page is written back, and all later calls are
// refused. Closing a poisoned database syncs the log — earlier committed
// transactions may still sit in the group-commit buffer — but leaves the
// half-mutated pages for recovery, and reports the poisoning error.
// Closing twice is a no-op.
func (db *Database) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	poisoned := db.poisoned
	db.mu.Unlock()
	if poisoned != nil {
		if db.wal != nil {
			if err := db.wal.Close(); err != nil {
				return err
			}
		}
		return poisoned
	}
	return db.pool.Close()
}

// WALStats returns the write-ahead log's counters; zero when WAL is off.
func (db *Database) WALStats() wal.Stats {
	if db.wal == nil {
		return wal.Stats{}
	}
	return db.wal.Stats()
}

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored objects.
func (c *Collection) Len() int { return c.rel.Len() }

// Pages returns the number of disk pages the collection occupies.
func (c *Collection) Pages() int { return c.rel.NumPages() }

// IndexHeight returns the height of the collection's R-tree.
func (c *Collection) IndexHeight() int { return c.index.Height() }

// IndexFileID returns the disk file backing the collection's persisted
// index entries — the pages a tree-strategy query scrubs before trusting
// the R-tree. Chaos tests target these pages to simulate index loss.
func (c *Collection) IndexFileID() storage.FileID { return c.indexFile.File() }

// appendIndexEntry persists one R-tree entry (tuple id + exact geometry) to
// the collection's backing index file. Storing the full shape — not just
// the MBR — lets a checkpoint-bounded recovery rebuild the R-tree from this
// file alone, without re-scanning the heap: the tree's leaves feed exact
// predicate evaluation, so an MBR-only entry would not be enough.
func (c *Collection) appendIndexEntry(id int, shape Spatial) error {
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[0:], uint64(id))
	rec := relation.EncodeGeometry(idb[:], shape)
	_, err := c.indexFile.Append(rec)
	return err
}

// Insert stores the object with an arbitrary payload string and returns its
// ID. Any precomputed join index involving this collection is maintained
// incrementally — at the full cost the paper warns about. Under a WAL the
// whole multi-page update (heap insert + R-tree entry + join-index
// maintenance) is one transaction: a crash at any point leaves either all
// of it or none of it.
func (c *Collection) Insert(shape Spatial, payload string) (int, error) {
	if shape == nil {
		return 0, fmt.Errorf("spatialjoin: nil shape")
	}
	var id int
	lsn, err := c.db.runTxn(func(uint64) error {
		var err error
		id, err = c.rel.Insert(relation.Tuple{payload, shape})
		if err != nil {
			return err
		}
		c.index.Insert(shape, id)
		if err := c.appendIndexEntry(id, shape); err != nil {
			return err
		}
		return c.db.maintainJoinIndices(c, id, shape)
	})
	if err != nil {
		return 0, err
	}
	db := c.db
	db.mu.Lock()
	c.lastLSN = lsn
	for _, ji := range db.joinIndices {
		if ji.r == c || ji.s == c {
			ji.lastLSN = lsn
		}
	}
	db.mu.Unlock()
	return id, nil
}

// Get returns the object's shape and payload.
func (c *Collection) Get(id int) (Spatial, string, error) {
	t, err := c.rel.Get(id)
	if err != nil {
		return nil, "", err
	}
	shape, err := c.rel.Schema().SpatialValue(t, 1)
	if err != nil {
		return nil, "", err
	}
	return shape, t[0].(string), nil
}
