package spatialjoin

import (
	"fmt"
	"runtime"

	"spatialjoin/internal/join"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
)

// Config sizes the simulated storage subsystem, mirroring the cost model's
// system parameters (Table 2), and the parallel execution engine.
type Config struct {
	// PageSize is the disk page size s in bytes.
	PageSize int
	// BufferPages is the buffer-pool capacity M in pages.
	BufferPages int
	// FillFactor is the average page utilization l in (0, 1].
	FillFactor float64
	// IndexOptions configures the per-collection R-tree indices.
	IndexOptions rtree.Options
	// JoinIndexOrder is the B+-tree order z for precomputed join indices.
	JoinIndexOrder int
	// Workers is the number of goroutines join strategies may use.
	// 0 means runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Whatever the setting, every strategy returns the identical,
	// canonically (R, S)-sorted match set.
	Workers int
}

// DefaultConfig returns a laptop-scale configuration with the paper's page
// geometry (s = 2000, l = 0.75), a 256-page buffer pool, and one join
// worker per available CPU.
func DefaultConfig() Config {
	return Config{
		PageSize:       2000,
		BufferPages:    256,
		FillFactor:     0.75,
		IndexOptions:   rtree.DefaultOptions(),
		JoinIndexOrder: 100,
		Workers:        runtime.GOMAXPROCS(0),
	}
}

// Database is an embedded spatial database over a simulated paged disk.
// All collections share one buffer pool, so measured page I/O reflects real
// cache contention between the inner and outer relations of a join.
//
// Read-only operations (Join, Select, SelectStored, Get, IOStats) are safe
// to call from multiple goroutines concurrently. Mutations — Insert,
// CreateCollection, BuildJoinIndex, DropCache, ResetIOStats — require
// external serialization with respect to every other call.
type Database struct {
	cfg         Config
	pool        *storage.BufferPool
	collections map[string]*Collection
	joinIndices map[string]*JoinIndex
}

// Open creates an empty database.
func Open(cfg Config) (*Database, error) {
	if cfg.PageSize <= 0 || cfg.BufferPages <= 0 {
		return nil, fmt.Errorf("spatialjoin: page size and buffer pages must be positive")
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		return nil, fmt.Errorf("spatialjoin: fill factor %g out of (0,1]", cfg.FillFactor)
	}
	if cfg.JoinIndexOrder < 3 {
		return nil, fmt.Errorf("spatialjoin: join index order %d < 3", cfg.JoinIndexOrder)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("spatialjoin: negative worker count %d", cfg.Workers)
	}
	pool, err := storage.NewBufferPool(storage.NewDisk(cfg.PageSize), cfg.BufferPages)
	if err != nil {
		return nil, err
	}
	return &Database{
		cfg:         cfg,
		pool:        pool,
		collections: make(map[string]*Collection),
		joinIndices: make(map[string]*JoinIndex),
	}, nil
}

// Collection is a named set of spatial objects, stored in a heap file and
// indexed by an R-tree generalization tree.
type Collection struct {
	db    *Database
	name  string
	rel   *relation.Relation
	table join.Table
	index *rtree.Tree
}

// CreateCollection makes an empty collection. Names must be unique.
func (db *Database) CreateCollection(name string) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("spatialjoin: empty collection name")
	}
	if _, dup := db.collections[name]; dup {
		return nil, fmt.Errorf("spatialjoin: collection %q already exists", name)
	}
	sch, err := relation.NewSchema(
		relation.Column{Name: "payload", Type: relation.TypeString},
		relation.Column{Name: "shape", Type: relation.TypeGeometry},
	)
	if err != nil {
		return nil, err
	}
	rel, err := relation.Create(db.pool, name, sch, db.cfg.FillFactor)
	if err != nil {
		return nil, err
	}
	table, err := join.NewTable(rel, 1, db.pool)
	if err != nil {
		return nil, err
	}
	index, err := rtree.New(db.cfg.IndexOptions)
	if err != nil {
		return nil, err
	}
	c := &Collection{db: db, name: name, rel: rel, table: table, index: index}
	db.collections[name] = c
	return c, nil
}

// Collection returns the named collection.
func (db *Database) Collection(name string) (*Collection, bool) {
	c, ok := db.collections[name]
	return c, ok
}

// ResetIOStats zeroes the shared buffer pool counters; measurements after a
// reset start from a warm (still-resident) cache. Use DropCache for cold
// measurements.
func (db *Database) ResetIOStats() { db.pool.ResetStats() }

// DropCache flushes and empties the buffer pool so the next query runs
// cold.
func (db *Database) DropCache() error { return db.pool.DropAll() }

// IOStats returns the shared pool's counters since the last reset.
func (db *Database) IOStats() storage.PoolStats { return db.pool.Stats() }

// Name returns the collection's name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of stored objects.
func (c *Collection) Len() int { return c.rel.Len() }

// Pages returns the number of disk pages the collection occupies.
func (c *Collection) Pages() int { return c.rel.NumPages() }

// IndexHeight returns the height of the collection's R-tree.
func (c *Collection) IndexHeight() int { return c.index.Height() }

// Insert stores the object with an arbitrary payload string and returns its
// ID. Any precomputed join index involving this collection is maintained
// incrementally — at the full cost the paper warns about.
func (c *Collection) Insert(shape Spatial, payload string) (int, error) {
	if shape == nil {
		return 0, fmt.Errorf("spatialjoin: nil shape")
	}
	id, err := c.rel.Insert(relation.Tuple{payload, shape})
	if err != nil {
		return 0, err
	}
	c.index.Insert(shape, id)
	if err := c.db.maintainJoinIndices(c, id, shape); err != nil {
		return 0, err
	}
	return id, nil
}

// Get returns the object's shape and payload.
func (c *Collection) Get(id int) (Spatial, string, error) {
	t, err := c.rel.Get(id)
	if err != nil {
		return nil, "", err
	}
	shape, err := c.rel.Schema().SpatialValue(t, 1)
	if err != nil {
		return nil, "", err
	}
	return shape, t[0].(string), nil
}
