package spatialjoin

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/join"
	"spatialjoin/internal/joinindex"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// RecoveryStats summarizes what Reopen replayed and discarded.
type RecoveryStats = wal.RecoveryStats

// errClosed refuses work after an orderly Close.
var errClosed = errors.New("spatialjoin: database is closed")

// runTxn executes one atomic update and returns the commit LSN (0 without
// a WAL). Without a WAL it just runs f. With one, it wraps f in
// begin/commit records: after f mutates pages in the buffer pool (where
// the no-steal discipline holds them back from the device), the write
// set's after-images and the commit record are appended to the log, the
// log is forced durable per the group-commit policy, and only then are the
// frames released for write-back. A crash at any point therefore leaves
// the device in either the pre- or the post-transaction committed state.
// An error from f aborts the transaction in the log and poisons the
// database — in-memory structures may hold half a transaction — and every
// later call is refused until the device is reopened through recovery.
//
// The transaction is registered in the active-transaction table from
// before its begin record until after its frames learn their covering LSN,
// under the same lock a checkpoint snapshots the table with: a fuzzy
// checkpoint therefore always either sees the transaction as active or
// sees its pages' redo floors, never neither.
func (db *Database) runTxn(f func(txn uint64) error) (wal.LSN, error) {
	if db.poisoned != nil {
		return 0, db.poisoned
	}
	if db.closed {
		return 0, errClosed
	}
	if db.wal == nil {
		return 0, f(0)
	}
	fault.CrashPoint("txn.begin")
	db.mu.Lock()
	txn := db.nextTxn
	db.nextTxn++
	beginLSN := db.wal.Begin(txn)
	db.activeTxns[txn] = beginLSN
	db.mu.Unlock()
	finish := func() {
		db.mu.Lock()
		delete(db.activeTxns, txn)
		db.mu.Unlock()
	}
	if err := f(txn); err != nil {
		db.wal.Abort(txn)
		finish()
		return 0, db.poison(err)
	}
	fault.CrashPoint("txn.mutated")
	dirty := db.pool.UnloggedDirtyPages()
	for _, id := range dirty {
		img, err := db.pool.SnapshotPage(id)
		if err != nil {
			db.wal.Abort(txn)
			finish()
			return 0, db.poison(err)
		}
		db.wal.AppendImage(txn, id, img)
	}
	fault.CrashPoint("txn.images-logged")
	lsn, err := db.wal.Commit(txn)
	if err != nil {
		// The commit record is appended even when the sync behind it
		// failed; the transaction may be durable, so it must not be
		// aborted — recovery decides.
		finish()
		return 0, db.poison(err)
	}
	// Only now, with the commit record (at least) appended, may the frames
	// learn their covering LSN: releasing them earlier would let an
	// eviction persist pages of a transaction that never commits. The
	// begin LSN rides along as the redo floor the dirty-page table reports.
	for _, id := range dirty {
		if err := db.pool.SetPageLSN(id, lsn, beginLSN); err != nil {
			finish()
			return 0, db.poison(err)
		}
	}
	finish()
	fault.CrashPoint("txn.committed")
	return lsn, nil
}

// poison marks the database as needing recovery after a failed WAL
// transaction. It returns err unchanged so callers report the root cause.
func (db *Database) poison(err error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil && db.poisoned == nil {
		db.poisoned = fmt.Errorf("spatialjoin: database needs recovery after a failed update: %w", err)
	}
	return err
}

// checkUsable refuses queries on a poisoned or closed database.
func (db *Database) checkUsable() error {
	if db.poisoned != nil {
		return db.poisoned
	}
	if db.closed {
		return errClosed
	}
	return nil
}

// Reopen recovers a database from a device that survived a crash: it scans
// the write-ahead log, discards the torn tail and every uncommitted
// transaction, replays the page images of committed transactions — bounded
// below by the last fuzzy checkpoint, whose dirty-page and
// active-transaction tables prove which older images are already on the
// device — and rebuilds the in-memory catalog (collections, R-trees, join
// indices). Collections the checkpoint manifest vouches for, whose files
// replay did not touch, load their R-trees straight from the persisted
// index file instead of re-scanning the heap; Stats.IndexRebuildsSkipped
// counts them. cfg must have WAL set and should otherwise match the crashed
// instance's configuration. The device is used as-is — pass the crashed
// database's Device() after rebooting any fault wrapper.
func Reopen(cfg Config, device storage.Device) (*Database, RecoveryStats, error) {
	return reopenWith(cfg, device, false, 0)
}

// ReopenAt recovers a replica device whose pages are trusted current up to
// applied: replay skips images below that floor and replays everything at
// or above it unconditionally, never consulting the checkpoint dirty-page
// table (which describes the primary's flush state, not this device's).
// Pass the NextApplyFloor from the previous recovery's stats; a floor of 1
// replays the whole log, which is the safe choice for a freshly deltaed
// device whose page contents may predate any straddling transaction.
func ReopenAt(cfg Config, device storage.Device, applied wal.LSN) (*Database, RecoveryStats, error) {
	if applied < 1 {
		applied = 1
	}
	return reopenWith(cfg, device, false, applied)
}

// reopenWith is Reopen with the checkpoint switch and replay floor exposed:
// crash harnesses recover the same device twice — once bounded, once from
// LSN 0 — and assert both paths reconstruct identical state, and replicas
// reopen with an explicit floor instead of the checkpoint bound.
func reopenWith(cfg Config, device storage.Device, ignoreCheckpoints bool, applyFloor wal.LSN) (*Database, RecoveryStats, error) {
	var stats RecoveryStats
	if !cfg.WAL {
		return nil, stats, fmt.Errorf("spatialjoin: Reopen requires Config.WAL")
	}
	if cfg.PageSize <= 0 || cfg.BufferPages <= 0 {
		return nil, stats, fmt.Errorf("spatialjoin: page size and buffer pages must be positive")
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		return nil, stats, fmt.Errorf("spatialjoin: fill factor %g out of (0,1]", cfg.FillFactor)
	}
	if cfg.JoinIndexOrder < 3 {
		return nil, stats, fmt.Errorf("spatialjoin: join index order %d < 3", cfg.JoinIndexOrder)
	}
	if device.PageSize() != cfg.PageSize {
		return nil, stats, fmt.Errorf("spatialjoin: device page size %d != configured %d",
			device.PageSize(), cfg.PageSize)
	}
	// Replay runs on the raw device before the pool exists, so the pool
	// never caches pre-replay bytes.
	res, err := wal.RecoverWith(device, wal.Options{
		GroupCommit:       cfg.WALGroupCommit,
		IgnoreCheckpoints: ignoreCheckpoints,
		ApplyFloor:        applyFloor,
	})
	if res != nil {
		stats = res.Stats
	}
	if err != nil {
		return nil, stats, err
	}
	pool, err := storage.NewBufferPool(device, cfg.BufferPages)
	if err != nil {
		return nil, stats, err
	}
	if cfg.Retry != nil {
		pool.SetRetryPolicy(*cfg.Retry)
	}
	pool.SetWAL(res.Log)
	fd, _ := device.(*fault.Disk)
	db := &Database{
		cfg:         cfg,
		pool:        pool,
		faultDisk:   fd,
		wal:         res.Log,
		collections: make(map[string]*Collection),
		joinIndices: make(map[string]*JoinIndex),
		nextTxn:     stats.NextTxn,
		activeTxns:  make(map[uint64]wal.LSN),
	}
	// The manifest registers pre-checkpoint objects first — truncation may
	// have destroyed their catalog records — then the scanned records add
	// post-checkpoint objects. Both reopen helpers skip names already
	// registered, so a surviving record for a manifest object is a no-op.
	if cp := res.Checkpoint; cp != nil {
		for _, mc := range cp.Manifest.Collections {
			if err := db.reopenCollection(mc.NewCollection, mc.CoveringLSN,
				!res.TouchedFiles[mc.HeapFile] && !res.TouchedFiles[mc.IndexFile], &stats); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering collection %q: %w", mc.Name, err)
			}
		}
		for _, mj := range cp.Manifest.JoinIndices {
			if err := db.reopenJoinIndex(mj.NewJoinIndex, mj.CoveringLSN); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering join index %s ⋈ %s on %s: %w",
					mj.R, mj.S, mj.Operator, err)
			}
		}
	}
	for _, rec := range res.Catalog {
		switch rec.Type {
		case wal.RecNewCollection:
			nc, err := wal.DecodeNewCollection(rec.Data)
			if err != nil {
				return nil, stats, err
			}
			if err := db.reopenCollection(nc, rec.LSN, false, &stats); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering collection %q: %w", nc.Name, err)
			}
		case wal.RecNewJoinIndex:
			nj, err := wal.DecodeNewJoinIndex(rec.Data)
			if err != nil {
				return nil, stats, err
			}
			if err := db.reopenJoinIndex(nj, rec.LSN); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering join index %s ⋈ %s on %s: %w",
					nj.R, nj.S, nj.Operator, err)
			}
		}
	}
	db.recovered = stats
	db.registerMetrics()
	return db, stats, nil
}

// DurableLSN reports the log's durable end — the record-boundary LSN a
// replica resumes tailing from — or 0 when the database runs without a WAL.
func (db *Database) DurableLSN() wal.LSN {
	if db.wal == nil {
		return 0
	}
	return db.wal.DurableLSN()
}

// AppendRawWAL appends a chunk of raw log records whose stream offset is
// from, which must equal the current durable end; the chunk is parsed and
// CRC-verified wholesale before a byte lands. It returns the parsed records
// so a replication follower can watch for commits and catalog changes
// without re-reading the log. Ordinary writers never call this.
func (db *Database) AppendRawWAL(from wal.LSN, data []byte) ([]wal.Record, error) {
	if db.wal == nil {
		return nil, fmt.Errorf("spatialjoin: AppendRawWAL requires Config.WAL")
	}
	return db.wal.AppendRaw(from, data)
}

// RetainWAL pins log truncation: checkpoints will not reclaim records at
// or above lsn until the pin moves or clears (lsn 0). A replication source
// holds the pin at its log reader's position so a checkpoint between two
// delta requests cannot truncate records the reader still needs. No-op
// without a WAL.
func (db *Database) RetainWAL(lsn wal.LSN) {
	if db.wal != nil {
		db.wal.Retain(lsn)
	}
}

// reopenCollection rebuilds one collection from its recovered files. When
// trusted is set — the checkpoint manifest vouches for the collection and
// replay wrote into neither of its files — the R-tree loads straight from
// the persisted index file, whose entries carry the exact geometry in
// insertion order; otherwise it is rebuilt from a heap scan (tuple IDs come
// back in heap order, equal to insertion order for sequentially grown
// collections). Both paths produce the identical tree.
func (db *Database) reopenCollection(nc wal.NewCollection, lsn wal.LSN, trusted bool, stats *RecoveryStats) error {
	if _, dup := db.collections[nc.Name]; dup {
		return nil
	}
	sch, err := collectionSchema()
	if err != nil {
		return err
	}
	rel, err := relation.Open(db.pool, nc.Name, sch, nc.HeapFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	table, err := join.NewTable(rel, 1, db.pool)
	if err != nil {
		return err
	}
	index, err := rtree.New(db.cfg.IndexOptions)
	if err != nil {
		return err
	}
	indexFile, err := storage.OpenHeapFile(db.pool, nc.IndexFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	if trusted {
		if err := loadIndexEntries(indexFile, index); err != nil {
			return err
		}
		stats.IndexRebuildsSkipped++
	} else if err := rel.Scan(func(id int, t relation.Tuple) (bool, error) {
		shape, err := rel.Schema().SpatialValue(t, 1)
		if err != nil {
			return false, err
		}
		index.Insert(shape, id)
		return true, nil
	}); err != nil {
		return err
	}
	db.collections[nc.Name] = &Collection{
		db: db, name: nc.Name, rel: rel, table: table, index: index, indexFile: indexFile,
		lastLSN: lsn,
	}
	return nil
}

// loadIndexEntries replays a persisted index file — [u64 id][geometry]
// records in insertion order — into a fresh R-tree.
func loadIndexEntries(indexFile *storage.HeapFile, index *rtree.Tree) error {
	var scanErr error
	if err := indexFile.Scan(func(_ storage.RID, rec []byte) bool {
		if len(rec) < 8 {
			scanErr = fmt.Errorf("spatialjoin: index entry of %d bytes, want >= 8", len(rec))
			return false
		}
		id := int(binary.LittleEndian.Uint64(rec[0:]))
		shape, n, err := relation.DecodeGeometry(rec[8:])
		if err != nil {
			scanErr = err
			return false
		}
		if 8+n != len(rec) {
			scanErr = fmt.Errorf("spatialjoin: index entry has %d trailing bytes", len(rec)-8-n)
			return false
		}
		index.Insert(shape, id)
		return true
	}); err != nil {
		return err
	}
	return scanErr
}

// reopenJoinIndex rebuilds one join index by replaying its recovered pair
// file into a fresh B+-tree (Add de-duplicates, so the file needs no
// compaction discipline).
func (db *Database) reopenJoinIndex(nj wal.NewJoinIndex, lsn wal.LSN) error {
	r, ok := db.collections[nj.R]
	if !ok {
		return fmt.Errorf("collection %q not recovered", nj.R)
	}
	s, ok := db.collections[nj.S]
	if !ok {
		return fmt.Errorf("collection %q not recovered", nj.S)
	}
	op, err := pred.ParseName(nj.Operator)
	if err != nil {
		return err
	}
	if _, dup := db.joinIndices[joinIndexKey(r, s, op)]; dup {
		return nil
	}
	ix, err := joinindex.New(db.cfg.JoinIndexOrder)
	if err != nil {
		return err
	}
	file, err := storage.OpenHeapFile(db.pool, nj.PairFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	var addErr error
	if err := file.Scan(func(_ storage.RID, rec []byte) bool {
		rid, sid, err := decodePair(rec)
		if err != nil {
			addErr = err
			return false
		}
		if _, err := ix.Add(rid, sid); err != nil {
			addErr = err
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if addErr != nil {
		return addErr
	}
	db.joinIndices[joinIndexKey(r, s, op)] = &JoinIndex{
		r: r, s: s, op: op, ix: ix, file: file, lastLSN: lsn,
	}
	return nil
}
