package spatialjoin

import (
	"fmt"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/join"
	"spatialjoin/internal/joinindex"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// RecoveryStats summarizes what Reopen replayed and discarded.
type RecoveryStats = wal.RecoveryStats

// runTxn executes one atomic update. Without a WAL it just runs f. With
// one, it wraps f in begin/commit records: after f mutates pages in the
// buffer pool (where the no-steal discipline holds them back from the
// device), the write set's after-images and the commit record are appended
// to the log, the log is forced durable per the group-commit policy, and
// only then are the frames released for write-back. A crash at any point
// therefore leaves the device in either the pre- or the post-transaction
// committed state. An error from f poisons the database — in-memory
// structures may hold half a transaction — and every later call is refused
// until the device is reopened through recovery.
func (db *Database) runTxn(f func(txn uint64) error) error {
	if db.poisoned != nil {
		return db.poisoned
	}
	if db.wal == nil {
		return f(0)
	}
	txn := db.nextTxn
	db.nextTxn++
	fault.CrashPoint("txn.begin")
	db.wal.Begin(txn)
	if err := f(txn); err != nil {
		return db.poison(err)
	}
	fault.CrashPoint("txn.mutated")
	dirty := db.pool.UnloggedDirtyPages()
	for _, id := range dirty {
		img, err := db.pool.SnapshotPage(id)
		if err != nil {
			return db.poison(err)
		}
		db.wal.AppendImage(txn, id, img)
	}
	fault.CrashPoint("txn.images-logged")
	lsn, err := db.wal.Commit(txn)
	if err != nil {
		return db.poison(err)
	}
	// Only now, with the commit record (at least) appended, may the frames
	// learn their covering LSN: releasing them earlier would let an
	// eviction persist pages of a transaction that never commits.
	for _, id := range dirty {
		if err := db.pool.SetPageLSN(id, lsn); err != nil {
			return db.poison(err)
		}
	}
	fault.CrashPoint("txn.committed")
	return nil
}

// poison marks the database as needing recovery after a failed WAL
// transaction. It returns err unchanged so callers report the root cause.
func (db *Database) poison(err error) error {
	if db.wal != nil && db.poisoned == nil {
		db.poisoned = fmt.Errorf("spatialjoin: database needs recovery after a failed update: %w", err)
	}
	return err
}

// checkUsable refuses queries on a poisoned database.
func (db *Database) checkUsable() error { return db.poisoned }

// Reopen recovers a database from a device that survived a crash: it scans
// the write-ahead log, discards the torn tail and every uncommitted
// transaction, replays the page images of committed transactions, and
// rebuilds the in-memory catalog (collections, R-trees, join indices) from
// the recovered pages. cfg must have WAL set and should otherwise match the
// crashed instance's configuration. The device is used as-is — pass the
// crashed database's Device() after rebooting any fault wrapper.
func Reopen(cfg Config, device storage.Device) (*Database, RecoveryStats, error) {
	var stats RecoveryStats
	if !cfg.WAL {
		return nil, stats, fmt.Errorf("spatialjoin: Reopen requires Config.WAL")
	}
	if cfg.PageSize <= 0 || cfg.BufferPages <= 0 {
		return nil, stats, fmt.Errorf("spatialjoin: page size and buffer pages must be positive")
	}
	if cfg.FillFactor <= 0 || cfg.FillFactor > 1 {
		return nil, stats, fmt.Errorf("spatialjoin: fill factor %g out of (0,1]", cfg.FillFactor)
	}
	if cfg.JoinIndexOrder < 3 {
		return nil, stats, fmt.Errorf("spatialjoin: join index order %d < 3", cfg.JoinIndexOrder)
	}
	if device.PageSize() != cfg.PageSize {
		return nil, stats, fmt.Errorf("spatialjoin: device page size %d != configured %d",
			device.PageSize(), cfg.PageSize)
	}
	// Replay runs on the raw device before the pool exists, so the pool
	// never caches pre-replay bytes.
	lg, catalog, stats, err := wal.Recover(device, cfg.WALGroupCommit)
	if err != nil {
		return nil, stats, err
	}
	pool, err := storage.NewBufferPool(device, cfg.BufferPages)
	if err != nil {
		return nil, stats, err
	}
	if cfg.Retry != nil {
		pool.SetRetryPolicy(*cfg.Retry)
	}
	pool.SetWAL(lg)
	fd, _ := device.(*fault.Disk)
	db := &Database{
		cfg:         cfg,
		pool:        pool,
		faultDisk:   fd,
		wal:         lg,
		collections: make(map[string]*Collection),
		joinIndices: make(map[string]*JoinIndex),
		nextTxn:     stats.NextTxn,
	}
	for _, rec := range catalog {
		switch rec.Type {
		case wal.RecNewCollection:
			nc, err := wal.DecodeNewCollection(rec.Data)
			if err != nil {
				return nil, stats, err
			}
			if err := db.reopenCollection(nc); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering collection %q: %w", nc.Name, err)
			}
		case wal.RecNewJoinIndex:
			nj, err := wal.DecodeNewJoinIndex(rec.Data)
			if err != nil {
				return nil, stats, err
			}
			if err := db.reopenJoinIndex(nj); err != nil {
				return nil, stats, fmt.Errorf("spatialjoin: recovering join index %s ⋈ %s on %s: %w",
					nj.R, nj.S, nj.Operator, err)
			}
		}
	}
	return db, stats, nil
}

// reopenCollection rebuilds one collection from its recovered files: tuple
// IDs come back in heap order (equal to insertion order for sequentially
// grown collections), and the R-tree is rebuilt from the exact stored
// shapes rather than the MBR-only entries of the persisted index file.
func (db *Database) reopenCollection(nc wal.NewCollection) error {
	sch, err := collectionSchema()
	if err != nil {
		return err
	}
	rel, err := relation.Open(db.pool, nc.Name, sch, nc.HeapFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	table, err := join.NewTable(rel, 1, db.pool)
	if err != nil {
		return err
	}
	index, err := rtree.New(db.cfg.IndexOptions)
	if err != nil {
		return err
	}
	if err := rel.Scan(func(id int, t relation.Tuple) (bool, error) {
		shape, err := rel.Schema().SpatialValue(t, 1)
		if err != nil {
			return false, err
		}
		index.Insert(shape, id)
		return true, nil
	}); err != nil {
		return err
	}
	indexFile, err := storage.OpenHeapFile(db.pool, nc.IndexFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	db.collections[nc.Name] = &Collection{
		db: db, name: nc.Name, rel: rel, table: table, index: index, indexFile: indexFile,
	}
	return nil
}

// reopenJoinIndex rebuilds one join index by replaying its recovered pair
// file into a fresh B+-tree (Add de-duplicates, so the file needs no
// compaction discipline).
func (db *Database) reopenJoinIndex(nj wal.NewJoinIndex) error {
	r, ok := db.collections[nj.R]
	if !ok {
		return fmt.Errorf("collection %q not recovered", nj.R)
	}
	s, ok := db.collections[nj.S]
	if !ok {
		return fmt.Errorf("collection %q not recovered", nj.S)
	}
	op, err := pred.ParseName(nj.Operator)
	if err != nil {
		return err
	}
	ix, err := joinindex.New(db.cfg.JoinIndexOrder)
	if err != nil {
		return err
	}
	file, err := storage.OpenHeapFile(db.pool, nj.PairFile, db.cfg.FillFactor)
	if err != nil {
		return err
	}
	var addErr error
	if err := file.Scan(func(_ storage.RID, rec []byte) bool {
		rid, sid, err := decodePair(rec)
		if err != nil {
			addErr = err
			return false
		}
		if _, err := ix.Add(rid, sid); err != nil {
			addErr = err
			return false
		}
		return true
	}); err != nil {
		return err
	}
	if addErr != nil {
		return addErr
	}
	db.joinIndices[joinIndexKey(r, s, op)] = &JoinIndex{r: r, s: s, op: op, ix: ix, file: file}
	return nil
}
