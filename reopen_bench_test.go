package spatialjoin

// BenchmarkReopen measures checkpoint-bounded recovery: how long Reopen
// takes on a device holding n committed inserts, with and without a
// truncating checkpoint before the crash. Without a checkpoint, recovery
// replays every image and rebuilds the R-tree from the heap, so the cost
// grows with n; with one, replay is empty, the index fast-loads from the
// manifest's persisted file, and the time stays flat. The replayed/op and
// logpages metrics feed the EXPERIMENTS.md recovery table.

import (
	"fmt"
	"testing"

	"spatialjoin/internal/wal"
)

func BenchmarkReopen(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		for _, ckpt := range []bool{false, true} {
			b.Run(fmt.Sprintf("inserts=%d/checkpoint=%v", n, ckpt), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.WAL = true
				cfg.WALGroupCommit = 64
				db, err := Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				c, err := db.CreateCollection("pts")
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if _, err := c.Insert(crashRect(i), fmt.Sprintf("p%d", i)); err != nil {
						b.Fatal(err)
					}
				}
				truncated := 0
				if ckpt {
					cs, err := db.Checkpoint()
					if err != nil {
						b.Fatal(err)
					}
					truncated = cs.PagesTruncated
				} else if err := db.wal.Sync(); err != nil {
					b.Fatal(err)
				}
				dev := db.Device()
				// Truncation zeroes pages below the floor without shrinking
				// the file, so the live log is the allocation minus them.
				logPages := dev.NumPages(wal.LogFileID) - truncated
				var stats RecoveryStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, stats, err = Reopen(cfg, dev)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(stats.RecordsReplayed), "replayed/op")
				b.ReportMetric(float64(stats.RecordsSkipped), "skipped/op")
				b.ReportMetric(float64(logPages), "logpages")
			})
		}
	}
}
