package spatialjoin

import (
	"fmt"
	"math"
	"math/rand"

	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/geom"
)

// Advice is the outcome of cost-based strategy selection for a join: the
// recommended strategy, the sampled selectivity estimate, and the model's
// cost for every candidate.
type Advice struct {
	// Strategy is the cheapest executable strategy.
	Strategy Strategy
	// EstimatedSelectivity is p̂ from pair sampling (Laplace-smoothed).
	EstimatedSelectivity float64
	// Costs holds the model's cost estimate per strategy, in time units.
	// IndexStrategy appears only when a join index exists for the triple.
	Costs map[Strategy]float64
	// SampledPairs is the number of object pairs evaluated for p̂.
	SampledPairs int
}

// AdviseJoin estimates the join selectivity by sampling object pairs, maps
// the database's physical configuration onto the paper's cost model, and
// prices the executable strategies: nested loop (D_I), generalization tree
// (D_IIb — collections are loaded in insertion order, which clusters
// spatially correlated inserts about as well as the model's clustered
// case), and — when one exists for (r, s, op) — the join index (D_III).
//
// The model is used the way the paper uses it: to rank strategies, not to
// predict wall-clock times. Empty collections default to TreeStrategy.
func (db *Database) AdviseJoin(r, s *Collection, op Operator) (Advice, error) {
	if r == nil || s == nil || op == nil {
		return Advice{}, fmt.Errorf("spatialjoin: nil advise argument")
	}
	advice := Advice{Strategy: TreeStrategy, Costs: map[Strategy]float64{}}
	if r.Len() == 0 || s.Len() == 0 {
		return advice, nil
	}

	// Sample up to 200 deterministic pairs for p̂.
	const maxSamples = 200
	rng := rand.New(rand.NewSource(int64(r.Len())*1_000_003 + int64(s.Len())))
	samples := maxSamples
	if total := r.Len() * s.Len(); total < samples {
		samples = total
	}
	matches := 0
	for i := 0; i < samples; i++ {
		ra, _, err := r.Get(rng.Intn(r.Len()))
		if err != nil {
			return advice, err
		}
		sb, _, err := s.Get(rng.Intn(s.Len()))
		if err != nil {
			return advice, err
		}
		if op.Eval(ra, sb) {
			matches++
		}
	}
	pHat := (float64(matches) + 1) / (float64(samples) + 2) // Laplace smoothing
	advice.EstimatedSelectivity = pHat
	advice.SampledPairs = samples

	prm, err := db.modelParams(r, s)
	if err != nil {
		return advice, err
	}
	m, err := costmodel.NewModel(prm, costmodel.Uniform, pHat)
	if err != nil {
		return advice, err
	}
	jc := m.JoinCosts()
	advice.Costs[ScanStrategy] = jc.DI
	advice.Costs[TreeStrategy] = jc.DIIb
	if _, ok := db.joinIndexFor(r, s, op); ok {
		advice.Costs[IndexStrategy] = jc.DIII
	}

	best, bestCost := TreeStrategy, math.Inf(1)
	for strat, cost := range advice.Costs {
		if cost < bestCost || (geom.SameCoord(cost, bestCost) && strat == TreeStrategy) {
			best, bestCost = strat, cost
		}
	}
	advice.Strategy = best
	return advice, nil
}

// modelParams maps the database's physical configuration and the
// collections' actual shapes onto the cost model's parameters.
func (db *Database) modelParams(r, s *Collection) (ModelParams, error) {
	prm := costmodel.PaperParams()
	prm.S = float64(db.cfg.PageSize)
	prm.L = db.cfg.FillFactor
	prm.M = float64(db.cfg.BufferPages)
	if prm.M <= 11 {
		prm.M = 12 // the blocking technique needs headroom
	}
	prm.Z = float64(db.cfg.JoinIndexOrder)

	// Effective fanout and height from the (larger) R-tree; the model wants
	// N = (k^{n+1}−1)/(k−1) ≈ the collection size.
	n := r.Len()
	if s.Len() > n {
		n = s.Len()
	}
	k := db.cfg.IndexOptions.MaxEntries
	if k < 2 {
		k = 2
	}
	levels := int(math.Ceil(math.Log(float64(n)*(float64(k)-1)+1)/math.Log(float64(k)))) - 1
	if levels < 1 {
		levels = 1
	}
	prm.K = k
	prm.Nlevels = levels
	prm.H = levels
	prm.T = float64(n)

	// Average tuple size from the heap file's real footprint.
	pages := r.Pages() + s.Pages()
	tuples := r.Len() + s.Len()
	if pages > 0 && tuples > 0 {
		v := float64(pages) * prm.S * prm.L / float64(tuples)
		if v >= 1 {
			prm.V = v
		}
	}
	if err := prm.Validate(); err != nil {
		return prm, fmt.Errorf("spatialjoin: derived model parameters invalid: %w", err)
	}
	return prm, nil
}

// JoinAuto runs AdviseJoin and executes the recommended strategy.
func (db *Database) JoinAuto(r, s *Collection, op Operator) ([]Match, Stats, Advice, error) {
	advice, err := db.AdviseJoin(r, s, op)
	if err != nil {
		return nil, Stats{}, advice, err
	}
	pairs, stats, err := db.Join(r, s, op, advice.Strategy)
	return pairs, stats, advice, err
}
