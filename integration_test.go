package spatialjoin

// Integration tests exercising several subsystems together: the
// cartographic hierarchy, the R-tree-backed Database, the z-order merge
// join and the executable strategies must all agree on the same workloads.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/carto"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// matchKey canonicalizes a match list for comparison.
func matchKey(ms []Match) string {
	sorted := append([]Match(nil), ms...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].R != sorted[j].R {
			return sorted[i].R < sorted[j].R
		}
		return sorted[i].S < sorted[j].S
	})
	return fmt.Sprint(sorted)
}

func TestIntegrationCartoHierarchyVsDatabase(t *testing.T) {
	// The same city polygons, queried through two different generalization
	// trees — the application-defined cartographic hierarchy and the
	// Database's R-tree — must produce identical join results.
	rng := rand.New(rand.NewSource(31))
	hierarchy, feats, err := datagen.GenerateMap(rng, datagen.MapSpec{
		World:            geom.NewRect(0, 0, 800, 800),
		Countries:        4,
		StatesPerCountry: 3,
		CitiesPerState:   6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cities only, re-numbered densely.
	var cities []carto.Feature
	for _, f := range feats {
		if f.Kind == carto.KindCity {
			cities = append(cities, f)
		}
	}

	db := openT(t)
	col, err := db.CreateCollection("cities")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cities {
		id, err := col.Insert(c.Shape, c.Name)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("city %d got id %d", i, id)
		}
	}

	for _, op := range []Operator{WithinDistance(120), DirectionOf(DirNortheast)} {
		// Reference: brute force over the city features.
		var want []Match
		for i, a := range cities {
			for j, b := range cities {
				if op.Eval(a.Shape, b.Shape) {
					want = append(want, Match{R: i, S: j})
				}
			}
		}
		// Via the Database (R-tree generalization tree).
		got, _, err := db.Join(col, col, op, TreeStrategy)
		if err != nil {
			t.Fatal(err)
		}
		if matchKey(got) != matchKey(want) {
			t.Fatalf("%s: database join %d pairs, brute force %d", op.Name(), len(got), len(want))
		}
		// Via the cartographic hierarchy (restricted to city results and
		// re-mapped onto the dense city numbering).
		res, err := core.Join(hierarchy.Tree(), hierarchy.Tree(), op, nil)
		if err != nil {
			t.Fatal(err)
		}
		tupleToCity := map[int]int{}
		for i, c := range cities {
			tupleToCity[c.TupleID] = i
		}
		var viaCarto []Match
		for _, m := range res.Pairs {
			r, okR := tupleToCity[m.R]
			s, okS := tupleToCity[m.S]
			if okR && okS {
				viaCarto = append(viaCarto, Match{R: r, S: s})
			}
		}
		if matchKey(viaCarto) != matchKey(want) {
			t.Fatalf("%s: carto join %d city pairs, brute force %d",
				op.Name(), len(viaCarto), len(want))
		}
	}
}

func TestIntegrationZOrderAgreesWithDatabaseJoin(t *testing.T) {
	// The z-order sort-merge join (the §2.2 sort-merge exception) and the
	// database's tree join must agree on an overlaps workload.
	rng := rand.New(rand.NewSource(32))
	world := NewRect(0, 0, 512, 512)
	rs := datagen.UniformRects(rng, 300, world, 2, 25)
	ss := datagen.UniformRects(rng, 300, world, 2, 25)

	db := openT(t)
	rc, _ := db.CreateCollection("r")
	sc, _ := db.CreateCollection("s")
	for i, r := range rs {
		rc.Insert(r, fmt.Sprintf("r%d", i))
	}
	for i, s := range ss {
		sc.Insert(s, fmt.Sprintf("s%d", i))
	}
	treePairs, _, err := db.Join(rc, sc, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	zPairs, err := ZOverlapJoin(rs, ss, world, 7)
	if err != nil {
		t.Fatal(err)
	}
	if matchKey(treePairs) != matchKey(zPairs) {
		t.Fatalf("tree join %d pairs, z-order merge %d", len(treePairs), len(zPairs))
	}
}

func TestIntegrationLakesHousesAllStrategies(t *testing.T) {
	// The paper's motivating query end-to-end, all strategies plus the
	// degenerate selection, on mixed geometry types (polygons + points).
	rng := rand.New(rand.NewSource(33))
	world := geom.NewRect(0, 0, 100, 100)
	lakes, houses := datagen.LakesAndHouses(rng, 12, 300, world)

	db := openT(t)
	lc, _ := db.CreateCollection("lakes")
	hc, _ := db.CreateCollection("houses")
	for _, l := range lakes {
		if _, err := lc.Insert(l.Shape, l.Name); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range houses {
		if _, err := hc.Insert(h.Location, fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	op := ReachableWithin(10, 1)
	scan, _, err := db.Join(hc, lc, op, ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := db.Join(hc, lc, op, TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.BuildJoinIndex(hc, lc, op); err != nil {
		t.Fatal(err)
	}
	idx, _, err := db.Join(hc, lc, op, IndexStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if matchKey(scan) != matchKey(tree) || matchKey(scan) != matchKey(idx) {
		t.Fatalf("strategies disagree: %d/%d/%d", len(scan), len(tree), len(idx))
	}
	if len(scan) == 0 {
		t.Fatal("lakeside workload must produce matches")
	}

	// The degenerate join (selection around one lake) agrees with the
	// full join restricted to that lake.
	shape, _, err := lc.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// Selection semantics: o θ house — ReachableWithin is symmetric in
	// geometry distance, so the same pairs result.
	sel, _, err := db.Select(hc, shape, op, TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	var wantIDs []int
	for _, m := range scan {
		if m.S == 0 {
			wantIDs = append(wantIDs, m.R)
		}
	}
	sort.Ints(sel)
	sort.Ints(wantIDs)
	if fmt.Sprint(sel) != fmt.Sprint(wantIDs) {
		t.Fatalf("degenerate join mismatch: select %d, join-restriction %d", len(sel), len(wantIDs))
	}
}

func TestIntegrationUpdateStorm(t *testing.T) {
	// Interleave inserts with queries across every structure at once: the
	// R-trees, the global join index and the relation files must stay
	// mutually consistent throughout.
	db := openT(t)
	rc, _ := db.CreateCollection("r")
	sc, _ := db.CreateCollection("s")
	rng := rand.New(rand.NewSource(34))
	op := Overlaps()
	add := func(c *Collection, tag string) {
		x, y := rng.Float64()*400, rng.Float64()*400
		if _, err := c.Insert(NewRect(x, y, x+30+rng.Float64()*40, y+30+rng.Float64()*40), tag); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		add(rc, "seed-r")
		add(sc, "seed-s")
	}
	if _, _, err := db.BuildJoinIndex(rc, sc, op); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			add(rc, "storm-r")
			add(sc, "storm-s")
		}
		scan, _, err := db.Join(rc, sc, op, ScanStrategy)
		if err != nil {
			t.Fatal(err)
		}
		tree, _, err := db.Join(rc, sc, op, TreeStrategy)
		if err != nil {
			t.Fatal(err)
		}
		idx, _, err := db.Join(rc, sc, op, IndexStrategy)
		if err != nil {
			t.Fatal(err)
		}
		if matchKey(scan) != matchKey(tree) || matchKey(scan) != matchKey(idx) {
			t.Fatalf("round %d: strategies diverged (%d/%d/%d pairs)",
				round, len(scan), len(tree), len(idx))
		}
	}
}
