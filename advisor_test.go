package spatialjoin

import (
	"fmt"
	"testing"
)

func TestAdviseJoinValidation(t *testing.T) {
	db := openT(t)
	c, _ := db.CreateCollection("c")
	if _, err := db.AdviseJoin(nil, c, Overlaps()); err == nil {
		t.Fatal("nil collection must fail")
	}
	if _, err := db.AdviseJoin(c, c, nil); err == nil {
		t.Fatal("nil operator must fail")
	}
}

func TestAdviseJoinEmptyCollections(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	advice, err := db.AdviseJoin(r, s, Overlaps())
	if err != nil {
		t.Fatal(err)
	}
	if advice.Strategy != TreeStrategy {
		t.Fatalf("empty collections should default to tree, got %v", advice.Strategy)
	}
	if advice.SampledPairs != 0 {
		t.Fatal("nothing to sample on empty collections")
	}
}

func TestAdvisePrefersTreeOverScan(t *testing.T) {
	// With no join index, the model should essentially never pick the
	// quadratic scan on a few hundred objects.
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	loadRandomRects(t, r, 41, 250)
	loadRandomRects(t, s, 42, 250)
	advice, err := db.AdviseJoin(r, s, Overlaps())
	if err != nil {
		t.Fatal(err)
	}
	if advice.Strategy != TreeStrategy {
		t.Fatalf("advice = %v, want tree (costs %v)", advice.Strategy, advice.Costs)
	}
	if advice.Costs[ScanStrategy] <= advice.Costs[TreeStrategy] {
		t.Fatalf("scan (%g) should out-cost tree (%g)",
			advice.Costs[ScanStrategy], advice.Costs[TreeStrategy])
	}
	if _, ok := advice.Costs[IndexStrategy]; ok {
		t.Fatal("index cost must not appear without an index")
	}
	if advice.EstimatedSelectivity <= 0 || advice.EstimatedSelectivity >= 1 {
		t.Fatalf("p̂ = %g out of (0,1)", advice.EstimatedSelectivity)
	}
}

func TestAdviseRanksIndexAgainstTree(t *testing.T) {
	// Two widely separated clusters: almost nothing matches and a join
	// index exists. Sampling floors p̂ at ≈1/202, which is still far above
	// the model's tree/index crossover (≈1e-9 at paper scale), so the
	// correct advice remains the tree — exactly the paper's conclusion that
	// join indices pay off only at very low selectivities. The index must
	// nevertheless be priced and the ranking coherent.
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	for i := 0; i < 200; i++ {
		f := float64(i)
		if _, err := r.Insert(NewRect(f/10, f/10, f/10+0.5, f/10+0.5), fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Insert(NewRect(900+f/10, 900+f/10, 900.5+f/10, 900.5+f/10), fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	op := Overlaps()
	if _, _, err := db.BuildJoinIndex(r, s, op); err != nil {
		t.Fatal(err)
	}
	advice, err := db.AdviseJoin(r, s, op)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := advice.Costs[IndexStrategy]; !ok {
		t.Fatal("index cost missing despite a built index")
	}
	if advice.Strategy != TreeStrategy {
		t.Fatalf("advice = %v at p̂=%g, want tree (costs %v)",
			advice.Strategy, advice.EstimatedSelectivity, advice.Costs)
	}
	// The chosen strategy must indeed be the argmin of the listed costs.
	for strat, cost := range advice.Costs {
		if cost < advice.Costs[advice.Strategy] {
			t.Fatalf("%v (%g) is cheaper than the chosen %v (%g)",
				strat, cost, advice.Strategy, advice.Costs[advice.Strategy])
		}
	}
}

func TestJoinAutoExecutesAdvice(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	loadRandomRects(t, r, 43, 120)
	loadRandomRects(t, s, 44, 120)
	op := WithinDistance(80)
	want, _, err := db.Join(r, s, op, ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	got, _, advice, err := db.JoinAuto(r, s, op)
	if err != nil {
		t.Fatal(err)
	}
	key := func(ms []Match) string { return fmt.Sprint(sortedMatches(ms)) }
	if key(got) != key(want) {
		t.Fatalf("auto join (%v) disagrees with scan: %d vs %d pairs",
			advice.Strategy, len(got), len(want))
	}
	if advice.Strategy == ScanStrategy {
		t.Fatal("auto join should not have picked the scan here")
	}
}

func sortedMatches(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].R < out[j-1].R ||
			(out[j].R == out[j-1].R && out[j].S < out[j-1].S)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestAdviceDeterministic(t *testing.T) {
	db := openT(t)
	r, _ := db.CreateCollection("r")
	s, _ := db.CreateCollection("s")
	loadRandomRects(t, r, 45, 100)
	loadRandomRects(t, s, 46, 100)
	a1, err := db.AdviseJoin(r, s, Overlaps())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := db.AdviseJoin(r, s, Overlaps())
	if err != nil {
		t.Fatal(err)
	}
	if a1.EstimatedSelectivity != a2.EstimatedSelectivity || a1.Strategy != a2.Strategy {
		t.Fatal("advice must be deterministic for an unchanged database")
	}
}
