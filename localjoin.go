package spatialjoin

import (
	"fmt"

	"spatialjoin/internal/localindex"
	"spatialjoin/internal/pred"
)

// Direction identifies a compass quadrant for the directional operators.
type Direction = pred.Direction

// Compass quadrants for DirectionOf.
const (
	DirNorthwest = pred.Northwest
	DirNortheast = pred.Northeast
	DirSouthwest = pred.Southwest
	DirSoutheast = pred.Southeast
)

// DirectionOf returns the generalized "o₁ to the <direction> of o₂"
// operator (the paper's Figure 5 construction, rotated to any quadrant).
// DirectionOf(DirNorthwest) is equivalent to NorthwestOf().
func DirectionOf(d Direction) Operator { return pred.DirectionOf{Dir: d} }

// LocalJoinIndex is the paper's §5 extension: per-subtree join indices
// anchored at a level λ of one collection's R-tree, mixing strategy II
// (live hierarchical descent for subtree-spanning pairs) with strategy III
// (precomputed lookup for intra-subtree pairs).
//
// The index is a snapshot of the collection at build time: inserting into
// the collection afterwards does NOT maintain it (the R-tree may
// restructure arbitrarily); rebuild after modifications.
type LocalJoinIndex struct {
	c  *Collection
	op Operator
	ix *localindex.Index
}

// BuildLocalJoinIndex precomputes local join indices for the self-join
// c ⋈θ c, anchored at the given level of c's R-tree generalization view
// (level 0 = root = one global index; levels past the leaves = pure tree
// join).
func (db *Database) BuildLocalJoinIndex(c *Collection, op Operator, level int) (*LocalJoinIndex, error) {
	if c == nil || op == nil {
		return nil, fmt.Errorf("spatialjoin: nil local-index argument")
	}
	ix, _, err := localindex.Build(c.index.Generalization(), op, level, db.cfg.JoinIndexOrder)
	if err != nil {
		return nil, err
	}
	return &LocalJoinIndex{c: c, op: op, ix: ix}, nil
}

// Level returns the anchor level λ.
func (l *LocalJoinIndex) Level() int { return l.ix.Level() }

// Anchors returns the number of per-subtree indices.
func (l *LocalJoinIndex) Anchors() int { return l.ix.Anchors() }

// StoredPairs returns the number of precomputed pairs across all anchors.
func (l *LocalJoinIndex) StoredPairs() int { return l.ix.Pairs() }

// SelfJoin computes the full self-join of the collection: intra-subtree
// pairs from the anchors, spanning pairs live.
func (l *LocalJoinIndex) SelfJoin() ([]Match, Stats, error) {
	pairs, st, err := l.ix.SelfJoin()
	if err != nil {
		return nil, Stats{}, err
	}
	return pairs, Stats{
		FilterEvals: st.FilterEvals,
		ExactEvals:  st.ExactEvals,
		IndexReads:  st.IndexReads,
	}, nil
}
