// Package spatialjoin is a library for the efficient computation of spatial
// joins, reproducing Günther's ICDE 1993 framework: generalization trees
// (hierarchies of spatially nested objects, with Guttman R-trees as the
// built-in abstract instance), the hierarchical SELECT and JOIN algorithms
// driven by Θ filter operators, Valduriez-style join indices, a blocked
// nested-loop baseline, an Orenstein z-order sort-merge join for the
// overlaps operator, and the paper's full analytical cost model.
//
// The high-level entry point is Database: an embedded spatial store over a
// simulated paged disk whose buffer-pool I/O is measured, so the cost
// trade-offs the paper analyzes can be observed on live queries.
//
//	db, _ := spatialjoin.Open(spatialjoin.DefaultConfig())
//	lakes, _ := db.CreateCollection("lakes")
//	houses, _ := db.CreateCollection("houses")
//	... lakes.Insert(shape, "Lake Tahoe") ...
//	pairs, stats, _ := db.Join(houses, lakes,
//	    spatialjoin.ReachableWithin(10, 1), spatialjoin.TreeStrategy)
//
// Lower-level building blocks (geometry, operators, cost model, z-order
// join) are exported alongside.
package spatialjoin

import (
	"context"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/zorder"
)

// Geometry types, re-exported from the geometry substrate.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (MBR).
	Rect = geom.Rect
	// Polygon is a simple polygon given as a vertex ring.
	Polygon = geom.Polygon
	// Segment is a line segment.
	Segment = geom.Segment
	// Spatial is any value with a minimum bounding rectangle.
	Spatial = geom.Spatial
)

// Pt returns the point (x, y).
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect returns the rectangle spanning two corners given in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// RegularPolygon returns a v-vertex regular polygon centered at c with
// circumradius r.
func RegularPolygon(c Point, r float64, v int) Polygon { return geom.RegularPolygon(c, r, v) }

// Operator is a spatial θ-operator paired with its Θ filter (Table 1 of the
// paper).
type Operator = pred.Operator

// Overlaps returns the "o₁ overlaps o₂" operator.
func Overlaps() Operator { return pred.Overlaps{} }

// WithinDistance returns "o₁ within distance d from o₂", measured between
// centerpoints.
func WithinDistance(d float64) Operator { return pred.WithinDistance{D: d} }

// DistanceBand returns "o₁ between lo and hi from o₂", measured between
// centerpoints — the paper's NO-LOC motivating operator ("between 50 and
// 100 kilometers from").
func DistanceBand(lo, hi float64) Operator { return pred.DistanceBand{Lo: lo, Hi: hi} }

// Includes returns "o₁ includes o₂".
func Includes() Operator { return pred.Includes{} }

// ContainedIn returns "o₁ contained in o₂".
func ContainedIn() Operator { return pred.ContainedIn{} }

// NorthwestOf returns "o₁ to the northwest of o₂", measured between
// centerpoints.
func NorthwestOf() Operator { return pred.NorthwestOf{} }

// ReachableWithin returns "o₁ reachable from o₂ in the given minutes" at a
// constant travel speed (coordinate units per minute).
func ReachableWithin(minutes, speed float64) Operator {
	return pred.ReachableWithin{Minutes: minutes, Speed: speed}
}

// Match is one result pair of a spatial join, identifying objects by their
// collection IDs.
type Match = core.Match

// ZOverlapJoin computes {(i, j) | rs[i] overlaps ss[j]} with Orenstein's
// z-order sort-merge algorithm — the one spatial operator for which a
// sort-merge strategy works (§2.2 of the paper) — on a single worker.
// See ZOverlapJoinWorkers.
func ZOverlapJoin(rs, ss []Rect, world Rect, level uint) ([]Match, error) {
	return ZOverlapJoinWorkers(rs, ss, world, level, 1)
}

// ZOverlapJoinWorkers computes {(i, j) | rs[i] overlaps ss[j]} with
// Orenstein's z-order sort-merge algorithm. world must cover all
// rectangles; level sets the grid resolution (cells per side = 2^level).
// Duplicate candidate reports are suppressed and candidates verified
// exactly.
//
// With workers > 1 (≤ 0 meaning GOMAXPROCS) the world is tile-partitioned
// into vertical strips joined concurrently, with pairs straddling a strip
// boundary reported exactly once. The match set is identical for every
// worker count and is returned canonically sorted by (R, S).
func ZOverlapJoinWorkers(rs, ss []Rect, world Rect, level uint, workers int) ([]Match, error) {
	return ZOverlapJoinCtx(context.Background(), rs, ss, world, level, workers)
}

// ZOverlapJoinCtx is ZOverlapJoinWorkers bounded by a context: cancellation
// between partition strips aborts the join with ctx.Err().
func ZOverlapJoinCtx(ctx context.Context, rs, ss []Rect, world Rect, level uint, workers int) ([]Match, error) {
	g, err := zorder.NewGrid(world, level)
	if err != nil {
		return nil, err
	}
	var pairs []zorder.Pair
	if workers == 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pairs, _ = g.OverlapJoin(rs, ss, zorder.JoinOptions{Dedup: true, Exact: true})
		zorder.SortPairs(pairs)
	} else {
		pairs, _, err = g.ParallelOverlapJoinCtx(ctx, rs, ss, workers)
		if err != nil {
			return nil, err
		}
	}
	out := make([]Match, len(pairs))
	for i, p := range pairs {
		out[i] = Match{R: p.R, S: p.S}
	}
	return out, nil
}
