package spatialjoin

import (
	"fmt"
	"sort"
	"time"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// CheckpointStats reports what one fuzzy checkpoint did.
type CheckpointStats struct {
	// BeginLSN and EndLSN bracket the checkpoint in the log.
	BeginLSN, EndLSN wal.LSN
	// RedoFloor is the LSN below which no log record can ever be needed
	// again; log pages wholly below it were reclaimed (when truncating).
	RedoFloor wal.LSN
	// PagesFlushed is the number of committed dirty frames the incremental
	// flush wrote back while writers kept running.
	PagesFlushed int
	// DirtyPages is the residual dirty-page table size recorded in the end
	// record — frames re-dirtied (or newly dirtied) during the flush.
	DirtyPages int
	// ActiveTxns is the number of transactions in flight at the begin
	// record.
	ActiveTxns int
	// PagesTruncated is the number of log pages zeroed below the floor.
	PagesTruncated int
	Duration       time.Duration
}

// CheckpointTotals aggregates checkpoint activity since Open/Reopen, for
// metrics exposition.
type CheckpointTotals struct {
	Checkpoints    int64
	PagesFlushed   int64
	PagesTruncated int64
	LastFloor      wal.LSN
	LastDuration   time.Duration
}

// Checkpoint takes a fuzzy checkpoint and truncates the log below its redo
// floor. It runs concurrently with mutations: writers are blocked only for
// the instants the transaction table is snapshotted and the end record is
// assembled, never for the page flushing in between. After it returns,
// recovery replays only records at or above the floor, and the log holds
// only pages a recovery could still need.
func (db *Database) Checkpoint() (CheckpointStats, error) {
	return db.checkpoint(true)
}

// checkpoint is Checkpoint with truncation optional: crash harnesses that
// re-recover from LSN 0 need the full log to survive the checkpoint.
//
// Protocol (see internal/wal/checkpoint.go for the recovery-side
// contract): the active-transaction table is snapshotted atomically with
// appending the begin record, under db.mu — the same lock runTxn registers
// under — so every transaction is either in the snapshot or begins above
// Lb. Committed dirty frames are then flushed incrementally in ascending
// page order; whatever remains dirty (re-dirtied during the sweep, or
// covered only by still-open transactions) lands in the end record's
// dirty-page table with its redo floor. Only the durable end record makes
// the checkpoint real; a crash in between leaves a begin marker recovery
// ignores.
func (db *Database) checkpoint(truncate bool) (CheckpointStats, error) {
	var cs CheckpointStats
	if db.wal == nil {
		return cs, fmt.Errorf("spatialjoin: checkpoint requires Config.WAL")
	}
	start := time.Now()
	db.mu.Lock()
	if db.poisoned != nil {
		err := db.poisoned
		db.mu.Unlock()
		return cs, err
	}
	if db.closed {
		db.mu.Unlock()
		return cs, errClosed
	}
	active := make([]wal.ActiveTxn, 0, len(db.activeTxns))
	for txn, begin := range db.activeTxns {
		active = append(active, wal.ActiveTxn{Txn: txn, BeginLSN: begin})
	}
	nextTxn := db.nextTxn
	lb := db.wal.AppendCheckpointBegin()
	db.mu.Unlock()
	obs.Record(obs.RecCheckpointBegin, 0, 0, int64(lb), 0)
	sort.Slice(active, func(i, j int) bool { return active[i].Txn < active[j].Txn })
	fault.CrashPoint("checkpoint.begin")

	prev := storage.PageID{File: -1, Page: -1}
	for {
		id, ok, err := db.pool.FlushOneDirty(prev)
		if err != nil {
			return cs, err
		}
		if !ok {
			break
		}
		cs.PagesFlushed++
		prev = id
		fault.CrashPoint("checkpoint.flush-page")
	}

	dpt := db.pool.DirtyPageTable()
	wdpt := make([]wal.DirtyPage, len(dpt))
	for i, d := range dpt {
		wdpt[i] = wal.DirtyPage{Page: d.ID, RecLSN: wal.LSN(d.RedoLSN)}
	}
	db.mu.Lock()
	manifest := db.manifestLocked()
	if db.nextTxn > nextTxn {
		nextTxn = db.nextTxn
	}
	db.mu.Unlock()

	cp := wal.Checkpoint{BeginLSN: lb, NextTxn: nextTxn, Active: active, DPT: wdpt, Manifest: manifest}
	end, err := db.wal.AppendCheckpointEnd(cp)
	if err != nil {
		return cs, err
	}
	fault.CrashPoint("checkpoint.end")
	cs.BeginLSN, cs.EndLSN = lb, end
	cs.RedoFloor = cp.RedoFloor()
	cs.DirtyPages = len(wdpt)
	cs.ActiveTxns = len(active)
	if truncate {
		n, err := db.wal.TruncateBelow(cs.RedoFloor)
		if err != nil {
			return cs, err
		}
		cs.PagesTruncated = n
	}
	cs.Duration = time.Since(start)
	obs.Record(obs.RecCheckpointEnd, 0, 0, int64(cs.PagesFlushed), cs.Duration.Nanoseconds())

	db.ckptMu.Lock()
	db.ckptTotals.Checkpoints++
	db.ckptTotals.PagesFlushed += int64(cs.PagesFlushed)
	db.ckptTotals.PagesTruncated += int64(cs.PagesTruncated)
	db.ckptTotals.LastFloor = cs.RedoFloor
	db.ckptTotals.LastDuration = cs.Duration
	db.ckptMu.Unlock()
	return cs, nil
}

// CheckpointTotals returns aggregate checkpoint activity since Open/Reopen.
func (db *Database) CheckpointTotals() CheckpointTotals {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.ckptTotals
}

// RecoveryInfo returns the stats of the recovery pass that produced this
// database; all zero for a database that came from Open.
func (db *Database) RecoveryInfo() RecoveryStats { return db.recovered }

// manifestLocked snapshots the catalog — every registered collection and
// join index with the commit LSN its files cover — in deterministic (name,
// key) order. Caller holds db.mu.
func (db *Database) manifestLocked() wal.Manifest {
	var m wal.Manifest
	names := make([]string, 0, len(db.collections))
	for name := range db.collections {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := db.collections[name]
		m.Collections = append(m.Collections, wal.ManifestCollection{
			NewCollection: wal.NewCollection{
				Name:      c.name,
				HeapFile:  c.rel.FileID(),
				IndexFile: c.indexFile.File(),
			},
			CoveringLSN: c.lastLSN,
		})
	}
	keys := make([]string, 0, len(db.joinIndices))
	for key := range db.joinIndices {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ji := db.joinIndices[key]
		m.JoinIndices = append(m.JoinIndices, wal.ManifestJoinIndex{
			NewJoinIndex: wal.NewJoinIndex{
				R: ji.r.name, S: ji.s.name, Operator: ji.op.Name(), PairFile: ji.file.File(),
			},
			CoveringLSN: ji.lastLSN,
		})
	}
	return m
}
