package spatialjoin

// Crash-sweep harness: a scripted update workload is killed at every
// injectable point — every physical write ordinal and every occurrence of
// every named protocol crash point — then the device is rebooted and the
// database reopened through WAL recovery. After each crash, the recovered
// database must be byte-identical, across all four strategies (scan, tree,
// joinindex, z-order), to a committed prefix of the workload: either every
// step that returned before the crash, or additionally the step that was
// in flight (a crash can land after the commit record is durable but
// before the call returns). Nothing else is admissible.

import (
	"fmt"
	"io"
	"sort"
	"testing"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
)

// crashWorld bounds every workload rectangle; the z-order grid is built
// over it.
var crashWorld = NewRect(0, 0, 1000, 1000)

const crashZLevel = 4

// crashConfig is the small WAL-enabled configuration the harness runs: a
// fault device for crash injection, pages small enough that single inserts
// span multiple physical writes.
func crashConfig(workers, groupCommit int) Config {
	cfg := DefaultConfig()
	cfg.PageSize = 512
	cfg.BufferPages = 32
	cfg.Workers = workers
	cfg.WAL = true
	cfg.WALGroupCommit = groupCommit
	cfg.Fault = &fault.Options{Seed: 1}
	return cfg
}

// crashRect returns the i-th deterministic workload rectangle, spread so
// that some pairs overlap and some do not.
func crashRect(i int) Rect {
	x := float64((i * 137) % 900)
	y := float64((i * 211) % 900)
	w := float64(20 + (i*53)%80)
	h := float64(20 + (i*29)%80)
	return NewRect(x, y, x+w, y+h)
}

// crashModel is the expected committed state after a prefix of workload
// steps.
type crashModel struct {
	createdR, createdS bool
	rectsR, rectsS     []Rect
	hasIndex           bool
}

// expectedMatches brute-forces r ⋈overlaps s over the model, sorted
// canonically like every strategy's output.
func (m crashModel) expectedMatches() []Match {
	var ms []Match
	for i, a := range m.rectsR {
		for j, b := range m.rectsS {
			if a.Intersects(b) {
				ms = append(ms, Match{R: i, S: j})
			}
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].R != ms[j].R {
			return ms[i].R < ms[j].R
		}
		return ms[i].S < ms[j].S
	})
	return ms
}

// crashStep is one scripted update.
type crashStep struct {
	name  string
	run   func(db *Database) error
	model crashModel // expected committed state once this step commits
}

// crashSteps returns the scripted workload: collection creation,
// interleaved inserts, an explicit flush, a join-index build, and more
// inserts exercising incremental join-index maintenance — each step one
// WAL transaction (Flush excepted).
func crashSteps() []crashStep {
	var steps []crashStep
	m := crashModel{}
	add := func(name string, run func(db *Database) error) {
		steps = append(steps, crashStep{name: name, run: run, model: m})
	}
	insertR := func(i int) func(db *Database) error {
		return func(db *Database) error {
			c, _ := db.Collection("r")
			_, err := c.Insert(crashRect(i), fmt.Sprintf("r%d", i))
			return err
		}
	}
	insertS := func(i int) func(db *Database) error {
		return func(db *Database) error {
			c, _ := db.Collection("s")
			_, err := c.Insert(crashRect(i), fmt.Sprintf("s%d", i))
			return err
		}
	}

	m.createdR = true
	add("create-r", func(db *Database) error {
		_, err := db.CreateCollection("r")
		return err
	})
	m.createdS = true
	add("create-s", func(db *Database) error {
		_, err := db.CreateCollection("s")
		return err
	})
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			m.rectsR = append(append([]Rect(nil), m.rectsR...), crashRect(i))
			add(fmt.Sprintf("insert-r%d", i), insertR(i))
		} else {
			m.rectsS = append(append([]Rect(nil), m.rectsS...), crashRect(i))
			add(fmt.Sprintf("insert-s%d", i), insertS(i))
		}
	}
	add("flush-1", func(db *Database) error { return db.Flush() })
	m.hasIndex = true
	add("build-joinindex", func(db *Database) error {
		r, _ := db.Collection("r")
		s, _ := db.Collection("s")
		_, _, err := db.BuildJoinIndex(r, s, Overlaps())
		return err
	})
	for i := 6; i < 9; i++ {
		if i%2 == 0 {
			m.rectsR = append(append([]Rect(nil), m.rectsR...), crashRect(i))
			add(fmt.Sprintf("insert-r%d", i), insertR(i))
		} else {
			m.rectsS = append(append([]Rect(nil), m.rectsS...), crashRect(i))
			add(fmt.Sprintf("insert-s%d", i), insertS(i))
		}
	}
	add("flush-2", func(db *Database) error { return db.Flush() })
	return steps
}

// checkpointCrashSteps is the workload with fuzzy checkpoints and a
// snapshot export woven through it: a non-truncating checkpoint between the
// two insert batches (so a from-LSN-0 recovery can still see the whole
// log), another after the index build, and a truncating snapshot export at
// the end. The checkpoints add no observable state — every step keeps the
// model of the step before it — but they move the redo floor, so crashes
// after them exercise bounded recovery's skip logic.
func checkpointCrashSteps() []crashStep {
	base := crashSteps()
	ckpt := func(name string) crashStep {
		return crashStep{name: name, run: func(db *Database) error {
			_, err := db.checkpoint(false)
			return err
		}}
	}
	var steps []crashStep
	for _, st := range base {
		steps = append(steps, st)
		switch st.name {
		case "insert-s3", "build-joinindex":
			c := ckpt("checkpoint-after-" + st.name)
			c.model = st.model
			steps = append(steps, c)
		}
	}
	export := crashStep{name: "export-snapshot", run: func(db *Database) error {
		_, err := db.ExportSnapshot(io.Discard)
		return err
	}}
	export.model = steps[len(steps)-1].model
	steps = append(steps, export)
	return steps
}

// stepsWithCheckpointEvery inserts a non-truncating fuzzy checkpoint after
// every k-th workload step; k <= 0 returns the plain workload. The fuzzer
// sweeps k to move the checkpoint boundary across every step transition.
func stepsWithCheckpointEvery(k int) []crashStep {
	base := crashSteps()
	if k <= 0 {
		return base
	}
	var steps []crashStep
	for i, st := range base {
		steps = append(steps, st)
		if (i+1)%k == 0 {
			c := crashStep{
				name: fmt.Sprintf("checkpoint-%d", i),
				run: func(db *Database) error {
					_, err := db.checkpoint(false)
					return err
				},
				model: st.model,
			}
			steps = append(steps, c)
		}
	}
	return steps
}

// collectionRects reads every stored shape of a recovered collection in ID
// order.
func collectionRects(c *Collection) ([]Rect, error) {
	out := make([]Rect, c.Len())
	for id := 0; id < c.Len(); id++ {
		shape, _, err := c.Get(id)
		if err != nil {
			return nil, err
		}
		r, ok := shape.(Rect)
		if !ok {
			return nil, fmt.Errorf("object %d is %T, want Rect", id, shape)
		}
		out[id] = r
	}
	return out, nil
}

// stateMatches reports whether db's observable state equals the model
// byte-for-byte across all four strategies. A nil error with false means a
// clean mismatch; an error means the database failed to answer, which the
// sweep treats as a verification failure at the call site.
func stateMatches(db *Database, m crashModel) (bool, error) {
	r, okR := db.Collection("r")
	s, okS := db.Collection("s")
	if okR != m.createdR || okS != m.createdS {
		return false, nil
	}
	if !m.createdR || !m.createdS {
		return true, nil // nothing else observable yet
	}
	if r.Len() != len(m.rectsR) || s.Len() != len(m.rectsS) {
		return false, nil
	}
	gotR, err := collectionRects(r)
	if err != nil {
		return false, err
	}
	gotS, err := collectionRects(s)
	if err != nil {
		return false, err
	}
	for i := range gotR {
		if gotR[i] != m.rectsR[i] {
			return false, nil
		}
	}
	for i := range gotS {
		if gotS[i] != m.rectsS[i] {
			return false, nil
		}
	}
	want := matchKey(m.expectedMatches())
	for _, strat := range []Strategy{ScanStrategy, TreeStrategy} {
		ms, _, err := db.Join(r, s, Overlaps(), strat)
		if err != nil {
			return false, fmt.Errorf("%v join: %w", strat, err)
		}
		if matchKey(ms) != want {
			return false, nil
		}
	}
	ms, _, err := db.Join(r, s, Overlaps(), IndexStrategy)
	if m.hasIndex {
		if err != nil {
			return false, fmt.Errorf("joinindex join: %w", err)
		}
		if matchKey(ms) != want {
			return false, nil
		}
	} else if err == nil {
		return false, nil // an index exists that never committed
	}
	zms, err := ZOverlapJoinWorkers(gotR, gotS, crashWorld, crashZLevel, db.cfg.Workers)
	if err != nil {
		return false, fmt.Errorf("zorder join: %w", err)
	}
	if matchKey(zms) != want {
		return false, nil
	}
	return true, nil
}

// runCrashCase opens a fresh database, arms the given schedule, runs the
// workload catching the injected crash, reboots and reopens, and asserts
// the recovered state equals an admissible committed prefix. When the
// bounded recovery reports an untruncated log (BaseLSN 0), the same device
// is recovered a second time with checkpoints ignored — a full replay from
// LSN 0 — and must reconstruct the identical state: the checkpoint's skip
// decisions may never change the outcome, only the work. It returns the
// bounded recovery's stats for callers that assert on accounting.
func runCrashCase(t *testing.T, cfg Config, steps []crashStep, label string, arm func(fd *fault.Disk)) RecoveryStats {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	fd := db.FaultDisk()
	if arm != nil {
		arm(fd)
	}
	completed := 0
	crashed := false
	func() {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := fault.AsCrash(v); !ok {
					panic(v)
				}
				crashed = true
			}
		}()
		for _, st := range steps {
			if err := st.run(db); err != nil {
				t.Fatalf("%s: step %s: %v", label, st.name, err)
			}
			completed++
		}
	}()
	fault.DisarmCrashPoints()
	if !crashed {
		// The schedule never fired: the workload ran to completion; the
		// live database must hold the final state.
		ok, err := stateMatches(db, steps[len(steps)-1].model)
		if err != nil {
			t.Fatalf("%s: verifying uncrashed state: %v", label, err)
		}
		if !ok {
			t.Fatalf("%s: uncrashed database diverges from the workload model", label)
		}
		return RecoveryStats{}
	}
	fd.Reboot()
	rdb, stats, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatalf("%s: Reopen after crash in step %s: %v", label, steps[completed].name, err)
	}
	// Admissible states: every step before the in-flight one committed, and
	// the in-flight step may or may not have made its commit record durable.
	var candidates []crashModel
	if completed == 0 {
		candidates = append(candidates, crashModel{})
	} else {
		candidates = append(candidates, steps[completed-1].model)
	}
	if completed < len(steps) {
		candidates = append(candidates, steps[completed].model)
	}
	for _, m := range candidates {
		ok, err := stateMatches(rdb, m)
		if err != nil {
			t.Fatalf("%s: verifying recovered state (crash in step %s): %v",
				label, steps[completed].name, err)
		}
		if ok {
			if stats.BaseLSN == 0 {
				// Nothing was truncated away: a full from-LSN-0 replay must
				// land on the same committed prefix the bounded pass chose.
				fdb, fstats, err := reopenWith(cfg, db.Device(), true, 0)
				if err != nil {
					t.Fatalf("%s: full (checkpoint-ignoring) recovery: %v", label, err)
				}
				if fstats.RecordsSkipped != 0 {
					t.Fatalf("%s: full recovery skipped %d records", label, fstats.RecordsSkipped)
				}
				fok, err := stateMatches(fdb, m)
				if err != nil {
					t.Fatalf("%s: verifying full-recovery state: %v", label, err)
				}
				if !fok {
					t.Fatalf("%s: bounded and full recovery disagree (crash in step %s, stats %+v vs %+v)",
						label, steps[completed].name, stats, fstats)
				}
			}
			return stats
		}
	}
	r, _ := rdb.Collection("r")
	s, _ := rdb.Collection("s")
	lenOf := func(c *Collection) int {
		if c == nil {
			return -1
		}
		return c.Len()
	}
	t.Fatalf("%s: recovered state matches no admissible prefix (crash in step %s, completed %d, |r|=%d, |s|=%d, stats %+v)",
		label, steps[completed].name, completed, lenOf(r), lenOf(s), stats)
	return stats
}

// dryRunWrites runs the workload uncrashed and returns the total physical
// write count — the number of injectable write ordinals.
func dryRunWrites(t *testing.T, cfg Config, steps []crashStep) int64 {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatalf("dry run step %s: %v", st.name, err)
		}
	}
	return db.DiskStats().Writes
}

// TestCrashSweepWriteCounts kills the workload at every physical write
// ordinal, at both worker counts, and requires recovery to an admissible
// committed prefix every time.
func TestCrashSweepWriteCounts(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := crashConfig(workers, 1)
			writes := dryRunWrites(t, cfg, crashSteps())
			if writes < 20 {
				t.Fatalf("workload only performs %d writes; the sweep is vacuous", writes)
			}
			for n := int64(1); n <= writes; n++ {
				n := n
				runCrashCase(t, cfg, crashSteps(), fmt.Sprintf("write=%d", n), func(fd *fault.Disk) {
					fd.SetCrashAfterWrites(n)
				})
			}
		})
	}
}

// TestCrashSweepCheckpointWriteCounts kills the checkpointing workload at
// every physical write ordinal: crashes land before, inside, and after the
// fuzzy checkpoints and the snapshot export, and every recovery — bounded
// by the checkpoint and, where the log survives whole, a second full replay
// from LSN 0 — must land on the same admissible committed prefix.
func TestCrashSweepCheckpointWriteCounts(t *testing.T) {
	cfg := crashConfig(1, 1)
	writes := dryRunWrites(t, cfg, checkpointCrashSteps())
	if writes < 20 {
		t.Fatalf("workload only performs %d writes; the sweep is vacuous", writes)
	}
	skipped := int64(0)
	for n := int64(1); n <= writes; n++ {
		n := n
		stats := runCrashCase(t, cfg, checkpointCrashSteps(), fmt.Sprintf("ckpt-write=%d", n),
			func(fd *fault.Disk) { fd.SetCrashAfterWrites(n) })
		skipped += stats.RecordsSkipped
	}
	// Late crashes recover through the checkpoint; redo bounding must have
	// provably saved work somewhere in the sweep.
	if skipped == 0 {
		t.Error("no sweep case skipped a record: checkpoint bounding never engaged")
	}
}

// TestCrashSweepNamedPoints kills the workload at every occurrence of every
// named protocol crash point (transaction begin/mutate/log/commit and the
// WAL sync steps).
func TestCrashSweepNamedPoints(t *testing.T) {
	cfg := crashConfig(1, 1)
	// Discover the points and their occurrence counts with a recording dry
	// run.
	fault.StartCrashPointRecording()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range crashSteps() {
		if err := st.run(db); err != nil {
			t.Fatalf("recording run step %s: %v", st.name, err)
		}
	}
	counts := fault.RecordedCrashPoints()
	fault.DisarmCrashPoints()
	if len(counts) < 4 {
		t.Fatalf("only %d named crash points recorded: %v", len(counts), counts)
	}
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, workers := range []int{1, 4} {
		wcfg := crashConfig(workers, 1)
		for _, point := range points {
			for k := 1; k <= counts[point]; k++ {
				point, k := point, k
				runCrashCase(t, wcfg, crashSteps(), fmt.Sprintf("workers=%d/%s#%d", workers, point, k),
					func(*fault.Disk) { fault.ArmCrashPoint(point, k) })
			}
		}
	}
}

// TestCrashSweepCheckpointNamedPoints kills the checkpointing workload at
// every occurrence of every named crash point — which now includes the
// checkpoint protocol's begin/flush/end markers and the snapshot export —
// and requires recovery to an admissible committed prefix every time.
func TestCrashSweepCheckpointNamedPoints(t *testing.T) {
	cfg := crashConfig(1, 1)
	fault.StartCrashPointRecording()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range checkpointCrashSteps() {
		if err := st.run(db); err != nil {
			t.Fatalf("recording run step %s: %v", st.name, err)
		}
	}
	counts := fault.RecordedCrashPoints()
	fault.DisarmCrashPoints()
	for _, want := range []string{"checkpoint.begin", "checkpoint.flush-page", "checkpoint.end", "snapshot.export"} {
		if counts[want] == 0 {
			t.Fatalf("checkpoint workload never reached crash point %q (recorded: %v)", want, counts)
		}
	}
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, point := range points {
		for k := 1; k <= counts[point]; k++ {
			point, k := point, k
			runCrashCase(t, cfg, checkpointCrashSteps(), fmt.Sprintf("ckpt/%s#%d", point, k),
				func(*fault.Disk) { fault.ArmCrashPoint(point, k) })
		}
	}
}

// TestCrashGroupCommitPrefix checks the weaker guarantee of group commit:
// a crash may lose the newest unsynced transactions, but what survives is
// always a committed prefix of the workload — never a corrupt or reordered
// state.
func TestCrashGroupCommitPrefix(t *testing.T) {
	cfg := crashConfig(1, 4)
	writes := dryRunWrites(t, cfg, crashSteps())
	steps := crashSteps()
	for n := int64(1); n <= writes; n += 3 {
		label := fmt.Sprintf("group-commit write=%d", n)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.FaultDisk().SetCrashAfterWrites(n)
		crashed := false
		func() {
			defer func() {
				if v := recover(); v != nil {
					if _, ok := fault.AsCrash(v); !ok {
						panic(v)
					}
					crashed = true
				}
			}()
			for _, st := range steps {
				if err := st.run(db); err != nil {
					t.Fatalf("%s: step %s: %v", label, st.name, err)
				}
			}
		}()
		if !crashed {
			continue
		}
		db.FaultDisk().Reboot()
		rdb, _, err := Reopen(cfg, db.Device())
		if err != nil {
			t.Fatalf("%s: Reopen: %v", label, err)
		}
		matched := false
		for j := -1; j < len(steps) && !matched; j++ {
			m := crashModel{}
			if j >= 0 {
				m = steps[j].model
			}
			ok, err := stateMatches(rdb, m)
			if err != nil {
				t.Fatalf("%s: verify: %v", label, err)
			}
			matched = ok
		}
		if !matched {
			t.Fatalf("%s: recovered state is not any committed prefix", label)
		}
	}
}

// TestCleanReopen recovers a database that shut down without crashing: the
// full workload must come back with zero torn bytes and all transactions
// committed.
func TestCleanReopen(t *testing.T) {
	cfg := crashConfig(1, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := crashSteps()
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatalf("step %s: %v", st.name, err)
		}
	}
	rdb, stats, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTailBytes != 0 || stats.TornPages != 0 {
		t.Errorf("clean shutdown reports torn state: %+v", stats)
	}
	if stats.TxnsDiscarded != 0 {
		t.Errorf("clean shutdown discarded %d transactions", stats.TxnsDiscarded)
	}
	if stats.RecordsScanned == 0 || stats.RecordsReplayed == 0 {
		t.Errorf("recovery scanned nothing: %+v", stats)
	}
	ok, err := stateMatches(rdb, steps[len(steps)-1].model)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cleanly reopened database diverges from the workload model")
	}
	// The recovered database must accept new transactions.
	r, _ := rdb.Collection("r")
	if _, err := r.Insert(crashRect(100), "post-recovery"); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

// TestPoisonedDatabaseRefusesWork checks the failure path short of a crash:
// when a WAL transaction dies with an error (not a panic), the database
// refuses further queries and mutations until reopened.
func TestPoisonedDatabaseRefusesWork(t *testing.T) {
	cfg := crashConfig(1, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(crashRect(0), "ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(nil, "nil shape"); err == nil {
		t.Fatal("nil-shape insert succeeded")
	}
	// A nil shape is rejected before the transaction opens, so the database
	// stays usable...
	if _, _, err := db.Select(c, crashRect(0), Overlaps(), ScanStrategy); err != nil {
		t.Fatalf("select after rejected insert: %v", err)
	}
	// ...but an error inside a transaction poisons it. Force one by losing
	// the heap page under the insert (after write-back, so the loss hits the
	// transaction's read, not the flush).
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	db.FaultDisk().LosePage(storage.PageID{File: c.rel.FileID(), Page: 0})
	if _, err := c.Insert(crashRect(1), "doomed"); err == nil {
		t.Fatal("insert over a lost heap page succeeded")
	}
	if _, _, err := db.Select(c, crashRect(0), Overlaps(), ScanStrategy); err == nil {
		t.Fatal("poisoned database answered a query")
	}
	if _, err := c.Insert(crashRect(2), "refused"); err == nil {
		t.Fatal("poisoned database accepted an insert")
	}
}
