package spatialjoin

import (
	"encoding/binary"
	"fmt"
	"io"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// snapMagic heads a snapshot stream: a header naming the checkpoint the
// image is consistent as of, wrapped around a storage device image.
var snapMagic = []byte("SJSNAP1\n")

const snapVersion = 1

// SnapshotInfo describes an exported or imported snapshot.
type SnapshotInfo struct {
	// CheckpointLSN is the begin LSN of the checkpoint taken immediately
	// before the image was cut; the image is consistent as of its end.
	CheckpointLSN wal.LSN
	// WALDurable is the log's durable tail at export — where the replica's
	// log resumes appending.
	WALDurable wal.LSN
	// Pages is the number of device pages in the image.
	Pages int
}

// ExportSnapshot checkpoints the database and streams a self-verifying
// device image to w, suitable for seeding a replica with SeedFromSnapshot.
// The checkpoint first forces everything committed onto the device and
// truncates the log, so the image is both consistent and minimal; writers
// may run concurrently — anything committed after the checkpoint's begin
// record simply rides along in the imaged log and is replayed on the
// replica. The stream ends in a CRC-32C trailer, so a torn or truncated
// copy fails loudly at import instead of silently seeding a prefix.
func (db *Database) ExportSnapshot(w io.Writer) (SnapshotInfo, error) {
	var info SnapshotInfo
	cs, err := db.checkpoint(true)
	if err != nil {
		return info, err
	}
	fault.CrashPoint("snapshot.export")
	info.CheckpointLSN = cs.BeginLSN
	info.WALDurable = wal.LSN(db.wal.DurableLSN())
	if _, err := w.Write(snapMagic); err != nil {
		return info, err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(info.CheckpointLSN))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(info.WALDurable))
	if _, err := w.Write(hdr[:]); err != nil {
		return info, err
	}
	info.Pages, err = storage.WriteDeviceImage(w, db.Device())
	return info, err
}

// SeedFromSnapshot materializes a fresh database from a snapshot stream: a
// brand-new healthy device is built page for page from the image, then
// opened through ordinary checkpoint-bounded recovery — the imaged log
// carries the checkpoint manifest and whatever committed past it. cfg
// plays the role it does for Reopen and must match the exporter's page
// geometry; cfg.Fault, when set, wraps the replica's device so chaos
// harnesses can torment the seeded copy too.
func SeedFromSnapshot(cfg Config, r io.Reader) (*Database, SnapshotInfo, error) {
	var info SnapshotInfo
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || string(m[:]) != string(snapMagic) {
		return nil, info, fmt.Errorf("spatialjoin: stream is not a snapshot")
	}
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, info, fmt.Errorf("spatialjoin: truncated snapshot header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != snapVersion {
		return nil, info, fmt.Errorf("spatialjoin: snapshot version %d, want %d", v, snapVersion)
	}
	info.CheckpointLSN = wal.LSN(binary.LittleEndian.Uint64(hdr[4:]))
	info.WALDurable = wal.LSN(binary.LittleEndian.Uint64(hdr[12:]))
	disk, err := storage.ReadDeviceImage(r)
	if err != nil {
		return nil, info, err
	}
	if disk.PageSize() != cfg.PageSize {
		return nil, info, fmt.Errorf("spatialjoin: snapshot page size %d != configured %d",
			disk.PageSize(), cfg.PageSize)
	}
	info.Pages = countPages(disk)
	var device storage.Device = disk
	if cfg.Fault != nil {
		device = fault.Wrap(device, *cfg.Fault)
	}
	db, stats, err := Reopen(cfg, device)
	if err != nil {
		return nil, info, err
	}
	if stats.CheckpointLSN != info.CheckpointLSN {
		return nil, info, fmt.Errorf("spatialjoin: snapshot names checkpoint %d but recovery found %d (corrupt or mismatched stream)",
			info.CheckpointLSN, stats.CheckpointLSN)
	}
	return db, info, nil
}

// countPages totals the pages of every file on a freshly imaged disk.
func countPages(d *storage.Disk) int {
	total := 0
	for f := 0; f < d.Files(); f++ {
		total += d.NumPages(storage.FileID(f))
	}
	return total
}
