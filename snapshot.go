package spatialjoin

import (
	"encoding/binary"
	"fmt"
	"io"

	"spatialjoin/internal/fault"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wal"
)

// snapMagic heads a snapshot stream: a header naming the checkpoint the
// image is consistent as of, wrapped around a storage device image.
var snapMagic = []byte("SJSNAP1\n")

const snapVersion = 1

// SnapshotInfo describes an exported or imported snapshot.
type SnapshotInfo struct {
	// CheckpointLSN is the begin LSN of the checkpoint taken immediately
	// before the image was cut; the image is consistent as of its end.
	CheckpointLSN wal.LSN
	// WALDurable is the log's durable tail at export — where the replica's
	// log resumes appending.
	WALDurable wal.LSN
	// Pages is the number of device pages in the image.
	Pages int
}

// ExportSnapshot checkpoints the database and streams a self-verifying
// device image to w, suitable for seeding a replica with SeedFromSnapshot.
// The checkpoint first forces everything committed onto the device and
// truncates the log, so the image is both consistent and minimal; writers
// may run concurrently — anything committed after the checkpoint's begin
// record simply rides along in the imaged log and is replayed on the
// replica. The stream ends in a CRC-32C trailer, so a torn or truncated
// copy fails loudly at import instead of silently seeding a prefix.
func (db *Database) ExportSnapshot(w io.Writer) (SnapshotInfo, error) {
	var info SnapshotInfo
	cs, err := db.checkpoint(true)
	if err != nil {
		return info, err
	}
	fault.CrashPoint("snapshot.export")
	info.CheckpointLSN = cs.BeginLSN
	info.WALDurable = wal.LSN(db.wal.DurableLSN())
	if _, err := w.Write(snapMagic); err != nil {
		return info, err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(info.CheckpointLSN))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(info.WALDurable))
	if _, err := w.Write(hdr[:]); err != nil {
		return info, err
	}
	info.Pages, err = storage.WriteDeviceImage(w, db.Device())
	return info, err
}

// SeedFromSnapshot materializes a fresh database from a snapshot stream: a
// brand-new healthy device is built page for page from the image, then
// opened through ordinary checkpoint-bounded recovery — the imaged log
// carries the checkpoint manifest and whatever committed past it. cfg
// plays the role it does for Reopen and must match the exporter's page
// geometry; cfg.Fault, when set, wraps the replica's device so chaos
// harnesses can torment the seeded copy too.
func SeedFromSnapshot(cfg Config, r io.Reader) (*Database, SnapshotInfo, error) {
	var info SnapshotInfo
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || string(m[:]) != string(snapMagic) {
		return nil, info, fmt.Errorf("spatialjoin: stream is not a snapshot")
	}
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, info, fmt.Errorf("spatialjoin: truncated snapshot header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != snapVersion {
		return nil, info, fmt.Errorf("spatialjoin: snapshot version %d, want %d", v, snapVersion)
	}
	info.CheckpointLSN = wal.LSN(binary.LittleEndian.Uint64(hdr[4:]))
	info.WALDurable = wal.LSN(binary.LittleEndian.Uint64(hdr[12:]))
	disk, err := storage.ReadDeviceImage(r)
	if err != nil {
		return nil, info, err
	}
	if disk.PageSize() != cfg.PageSize {
		return nil, info, fmt.Errorf("spatialjoin: snapshot page size %d != configured %d",
			disk.PageSize(), cfg.PageSize)
	}
	info.Pages = countPages(disk)
	var device storage.Device = disk
	if cfg.Fault != nil {
		device = fault.Wrap(device, *cfg.Fault)
	}
	db, stats, err := Reopen(cfg, device)
	if err != nil {
		return nil, info, err
	}
	if stats.CheckpointLSN != info.CheckpointLSN {
		// The device opened, so it must be closed: a seed that leaks its
		// half-built database keeps the log and pool frames alive.
		db.Close()
		return nil, info, fmt.Errorf("spatialjoin: snapshot names checkpoint %d but recovery found %d (corrupt or mismatched stream)",
			info.CheckpointLSN, stats.CheckpointLSN)
	}
	return db, info, nil
}

// deltaMagic heads a snapshot-delta stream: the same length as snapMagic,
// so a receiver dispatches on the first eight bytes of either stream.
var deltaMagic = []byte("SJDELTA1")

const deltaVersion = 1

// DeltaInfo describes an exported or applied snapshot delta.
type DeltaInfo struct {
	// SinceLSN is the replica's last-applied LSN the delta was cut against:
	// every page whose latest logged image is at or above it is included.
	SinceLSN wal.LSN
	// WALDurable is the primary log's durable tail at export.
	WALDurable wal.LSN
	// DataPages is the number of dirtied data pages shipped.
	DataPages int
	// LogPages is the number of log pages shipped (the log travels whole —
	// it is the delta's authority on what committed).
	LogPages int
}

// ExportDelta streams the pages in pages plus the entire write-ahead log to
// w as a snapshot delta. The caller — a replication source — is responsible
// for the protocol around it: checkpoint first so committed content is on
// the device, derive pages from the log's image records since the replica's
// applied LSN, and keep the log pinned (RetainWAL) so truncation cannot
// outrun that derivation. The log ships authoritative: the receiver zeroes
// whatever log pages the delta does not carry, then replays the shipped log
// end to end, which rewinds any page content newer than the shipped prefix
// back to a consistent state the subsequent tail stream rebuilds from.
func (db *Database) ExportDelta(w io.Writer, since wal.LSN, pages []storage.PageID) (DeltaInfo, error) {
	var info DeltaInfo
	if db.wal == nil {
		return info, fmt.Errorf("spatialjoin: ExportDelta requires Config.WAL")
	}
	info.SinceLSN = since
	info.WALDurable = db.wal.DurableLSN()
	if _, err := w.Write(deltaMagic); err != nil {
		return info, err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], deltaVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(info.SinceLSN))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(info.WALDurable))
	if _, err := w.Write(hdr[:]); err != nil {
		return info, err
	}
	var err error
	info.DataPages, info.LogPages, err = storage.WritePageSetImage(
		w, db.Device(), pages, []storage.FileID{wal.LogFileID})
	return info, err
}

// ApplySnapshotDelta patches a replica's raw disk in place from a delta
// stream. The caller must have closed the database using the disk first and
// must reopen it through full-log recovery (ReopenAt with floor 1) after:
// the shipped log is the only authority on which of the patched pages'
// contents are committed. On error the disk may be half-patched and must be
// discarded in favor of a full reseed.
func ApplySnapshotDelta(disk *storage.Disk, r io.Reader) (DeltaInfo, error) {
	var info DeltaInfo
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || string(m[:]) != string(deltaMagic) {
		return info, fmt.Errorf("spatialjoin: stream is not a snapshot delta")
	}
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return info, fmt.Errorf("spatialjoin: truncated delta header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != deltaVersion {
		return info, fmt.Errorf("spatialjoin: delta version %d, want %d", v, deltaVersion)
	}
	info.SinceLSN = wal.LSN(binary.LittleEndian.Uint64(hdr[4:]))
	info.WALDurable = wal.LSN(binary.LittleEndian.Uint64(hdr[12:]))
	var err error
	info.DataPages, info.LogPages, err = storage.ApplyPageSetImage(r, disk)
	return info, err
}

// SniffSnapshot inspects the eight-byte prefix of a seeding stream and
// reports whether it heads a full snapshot (true) or a snapshot delta
// (false). Replicas use it to dispatch a resync response, since a primary
// answers a delta request with a full snapshot when its dirty-page
// tracking does not reach back far enough.
func SniffSnapshot(prefix []byte) (bool, error) {
	switch {
	case string(prefix) == string(snapMagic):
		return true, nil
	case string(prefix) == string(deltaMagic):
		return false, nil
	}
	return false, fmt.Errorf("spatialjoin: stream is neither a snapshot nor a delta")
}

// countPages totals the pages of every file on a freshly imaged disk.
func countPages(d *storage.Disk) int {
	total := 0
	for f := 0; f < d.Files(); f++ {
		total += d.NumPages(storage.FileID(f))
	}
	return total
}
