package spatialjoin

// This file is the benchmark harness of deliverable (d): one benchmark per
// table and figure of the paper's evaluation, plus measured-simulator
// counterparts and ablations of design choices. Analytic benchmarks
// re-evaluate the §4 cost formulas exactly as cmd/spatialbench prints them;
// measured benchmarks run the executable strategies on the simulated disk
// and report cost-model units via b.ReportMetric.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/gridfile"
	"spatialjoin/internal/join"
	"spatialjoin/internal/localindex"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/zorder"
)

// --- Table 1: θ/Θ operator evaluation -----------------------------------

func BenchmarkTable1ThetaOperators(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]geom.Rect, 256)
	for i := range objs {
		x, y := rng.Float64()*100, rng.Float64()*100
		objs[i] = geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
	}
	for _, op := range pred.Table1() {
		b.Run(op.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := objs[i%len(objs)]
				c := objs[(i*7+3)%len(objs)]
				op.Eval(a, c)
				op.Filter(a.Bounds(), c.Bounds())
			}
		})
	}
}

// --- Figure 1 substrate: z-ordering --------------------------------------

func BenchmarkFig1ZOrderDecompose(b *testing.B) {
	g, err := zorder.NewGrid(geom.NewRect(0, 0, 1024, 1024), 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	rects := datagen.UniformRects(rng, 512, geom.NewRect(0, 0, 1024, 1024), 2, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Decompose(rects[i%len(rects)])
	}
}

func BenchmarkFig1ZOrderMergeJoin(b *testing.B) {
	world := geom.NewRect(0, 0, 1024, 1024)
	g, err := zorder.NewGrid(world, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rs := datagen.UniformRects(rng, 500, world, 2, 40)
	ss := datagen.UniformRects(rng, 500, world, 2, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.OverlapJoin(rs, ss, zorder.JoinOptions{Dedup: true, Exact: true})
	}
}

// BenchmarkZOverlapParallelJoin measures the tile-partitioned parallel
// z-order join. Workers = 0 resolves to GOMAXPROCS, so
//
//	go test -bench=ZOverlap -cpu=1,4
//
// compares the sequential schedule against a 4-worker run of the same
// join; the match count is reported so the runs are checkably identical.
func BenchmarkZOverlapParallelJoin(b *testing.B) {
	world := geom.NewRect(0, 0, 4096, 4096)
	rng := rand.New(rand.NewSource(17))
	rs := datagen.UniformRects(rng, 4000, world, 2, 30)
	ss := datagen.UniformRects(rng, 4000, world, 2, 30)
	var matches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := ZOverlapJoinWorkers(rs, ss, world, 9, 0)
		if err != nil {
			b.Fatal(err)
		}
		matches = len(ms)
	}
	b.ReportMetric(float64(matches), "matches")
}

// --- Figure 7: ρ profiles -------------------------------------------------

func BenchmarkFig7RhoProfiles(b *testing.B) {
	prm := costmodel.PaperParams()
	for _, dist := range costmodel.Distributions() {
		b.Run(dist.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := costmodel.Fig7(prm, dist, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4.2: update costs ----------------------------------------------------

func BenchmarkUpdateCosts(b *testing.B) {
	m := costmodel.MustModel(costmodel.PaperParams(), costmodel.Uniform, 0.5)
	var sink costmodel.UpdateCosts
	for i := 0; i < b.N; i++ {
		sink = m.UpdateCosts()
	}
	b.ReportMetric(sink.UIII/sink.UIIb, "UIII/UIIb")
}

// --- Figures 8–10: analytic SELECT sweeps ---------------------------------

func benchSelectFigure(b *testing.B, dist costmodel.DistKind) {
	prm := costmodel.PaperParams()
	ps, err := costmodel.LogSpace(1e-6, 1, 41)
	if err != nil {
		b.Fatal(err)
	}
	var series []costmodel.Series
	for i := 0; i < b.N; i++ {
		series, err = costmodel.SelectFigure(prm, dist, ps, prm.H)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the headline number of the figure: the best clustered-tree
	// advantage over the unclustered tree across the sweep.
	iia, _ := costmodel.SeriesByName(series, "C_IIa")
	iib, _ := costmodel.SeriesByName(series, "C_IIb")
	best := 0.0
	for i := range iia.Y {
		if r := iia.Y[i] / iib.Y[i]; r > best {
			best = r
		}
	}
	b.ReportMetric(best, "max_CIIa/CIIb")
}

func BenchmarkFig8SelectUniform(b *testing.B) { benchSelectFigure(b, costmodel.Uniform) }
func BenchmarkFig9SelectNoLoc(b *testing.B)   { benchSelectFigure(b, costmodel.NoLoc) }
func BenchmarkFig10SelectHiLoc(b *testing.B)  { benchSelectFigure(b, costmodel.HiLoc) }

// --- Figures 11–13: analytic JOIN sweeps -----------------------------------

func benchJoinFigure(b *testing.B, dist costmodel.DistKind) {
	prm := costmodel.PaperParams()
	ps, err := costmodel.LogSpace(1e-12, 1, 49)
	if err != nil {
		b.Fatal(err)
	}
	var series []costmodel.Series
	for i := 0; i < b.N; i++ {
		series, err = costmodel.JoinFigure(prm, dist, ps)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the crossover selectivity (the figure's headline), when any.
	iia, _ := costmodel.SeriesByName(series, "D_IIa")
	iii, _ := costmodel.SeriesByName(series, "D_III")
	if x, ok := costmodel.Crossover(iia, iii); ok {
		// Report -log10(p) so sub-1e-6 crossovers stay readable in the
		// fixed-precision metric column (9.5 ⇒ p ≈ 3e-10).
		b.ReportMetric(-math.Log10(x), "crossover_neg_log10_p")
	}
}

func BenchmarkFig11JoinUniform(b *testing.B) { benchJoinFigure(b, costmodel.Uniform) }
func BenchmarkFig12JoinNoLoc(b *testing.B)   { benchJoinFigure(b, costmodel.NoLoc) }
func BenchmarkFig13JoinHiLoc(b *testing.B)   { benchJoinFigure(b, costmodel.HiLoc) }

// --- Measured counterparts: strategies on the simulated disk ---------------

// benchWorkload loads a k-ary model tree into a relation on a fresh pool.
func benchWorkload(b *testing.B, pool *storage.BufferPool, seed int64, k, height int,
	placement relation.Placement) (join.Table, core.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	sch, err := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{int64(i), rects[i]}
	}
	rel, err := relation.BulkLoad(pool, "bench", sch, tuples, placement, 0.75, seed)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := join.NewTable(rel, 1, pool)
	if err != nil {
		b.Fatal(err)
	}
	return tab, tree
}

func newBenchPool(b *testing.B, capacity int) *storage.BufferPool {
	b.Helper()
	pool, err := storage.NewBufferPool(storage.NewDisk(2000), capacity)
	if err != nil {
		b.Fatal(err)
	}
	return pool
}

func BenchmarkMeasuredSelect(b *testing.B) {
	for _, layout := range []struct {
		name      string
		placement relation.Placement
	}{
		{"clustered_IIb", relation.PlaceSequential},
		{"unclustered_IIa", relation.PlaceShuffled},
	} {
		b.Run(layout.name, func(b *testing.B) {
			pool := newBenchPool(b, 16)
			tab, tree := benchWorkload(b, pool, 1, 5, 4, layout.placement)
			q := geom.NewRect(100, 100, 420, 420)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.DropAll(); err != nil {
					b.Fatal(err)
				}
				_, stats, err := join.TreeSelect(tree, tab, q, pred.Overlaps{}, core.BreadthFirst)
				if err != nil {
					b.Fatal(err)
				}
				total += stats.PageReads
			}
			b.ReportMetric(float64(total)/float64(b.N), "page_reads/op")
		})
	}
}

func BenchmarkMeasuredJoin(b *testing.B) {
	pool := newBenchPool(b, 64)
	r, trR := benchWorkload(b, pool, 2, 4, 3, relation.PlaceSequential)
	s, trS := benchWorkload(b, pool, 3, 4, 3, relation.PlaceSequential)
	op := pred.Overlaps{}

	b.Run("nested_loop_I", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			_, stats, err := join.NestedLoop(r, s, op)
			if err != nil {
				b.Fatal(err)
			}
			cost = stats.Cost(1, 1000)
		}
		b.ReportMetric(cost, "model_cost")
	})
	b.Run("tree_II", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			_, stats, err := join.TreeJoin(trR, r, trS, s, op)
			if err != nil {
				b.Fatal(err)
			}
			cost = stats.Cost(1, 1000)
		}
		b.ReportMetric(cost, "model_cost")
	})
	b.Run("join_index_III", func(b *testing.B) {
		ix, _, err := join.BuildIndex(r, s, op, 100)
		if err != nil {
			b.Fatal(err)
		}
		var cost float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			_, stats, err := join.IndexJoin(ix, r, s)
			if err != nil {
				b.Fatal(err)
			}
			cost = stats.Cost(1, 1000)
		}
		b.ReportMetric(cost, "model_cost")
	})
}

func BenchmarkMeasuredUpdate(b *testing.B) {
	// The measured face of §4.2: cost of one insert with and without a
	// join index to maintain.
	mk := func(withIndex bool) func(b *testing.B) {
		return func(b *testing.B) {
			db, err := Open(DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			rc, _ := db.CreateCollection("r")
			sc, _ := db.CreateCollection("s")
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 300; i++ {
				x, y := rng.Float64()*900, rng.Float64()*900
				rc.Insert(NewRect(x, y, x+10, y+10), "r")
				sc.Insert(NewRect(x+5, y+5, x+15, y+15), "s")
			}
			if withIndex {
				if _, _, err := db.BuildJoinIndex(rc, sc, Overlaps()); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := float64(i%900) + rng.Float64()
				if _, err := rc.Insert(NewRect(x, x, x+8, x+8), "new"); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("tree_only_UII", mk(false))
	b.Run("with_join_index_UIII", mk(true))
}

// --- Observability overhead on the Figure-8 workload -----------------------

// BenchmarkFig8TraceOverhead prices the tracing hooks on the measured
// Figure-8 select workload. "uninstrumented" replicates the executor's
// pre-hook call path (measure + core.Select with no trace options) as the
// baseline; "nil_trace" is the shipped off-by-default path (a context
// lookup plus nil checks, the state every un-traced query pays); and
// "full_trace" arms a fresh trace per query. The nil_trace column must
// stay within 2% of the baseline — spatialbench -what trace prints the
// same comparison as a table.
func BenchmarkFig8TraceOverhead(b *testing.B) {
	pool := newBenchPool(b, 16)
	tab, tree := benchWorkload(b, pool, 1, 5, 4, relation.PlaceShuffled)
	q := geom.NewRect(100, 100, 420, 420)
	op := pred.Overlaps{}

	b.Run("uninstrumented", func(b *testing.B) {
		opts := &core.SelectOptions{
			Traversal: core.BreadthFirst,
			Touch: func(n core.Node) error {
				id, ok := n.Tuple()
				if !ok {
					return nil
				}
				rid, err := tab.Rel.RID(id)
				if err != nil {
					return err
				}
				_, err = tab.Pool.Fetch(rid.Page)
				return err
			},
		}
		var reads int64
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			before := pool.Stats().Misses
			if _, err := core.Select(tree, q, op, opts); err != nil {
				b.Fatal(err)
			}
			reads = pool.Stats().Misses - before
		}
		b.ReportMetric(float64(reads), "page_reads")
	})
	b.Run("nil_trace", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			if _, _, err := join.TreeSelectCtx(ctx, tree, tab, q, op, core.BreadthFirst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full_trace", func(b *testing.B) {
		var spans int
		for i := 0; i < b.N; i++ {
			if err := pool.DropAll(); err != nil {
				b.Fatal(err)
			}
			ctx, trace := obs.WithTrace(context.Background())
			if _, _, err := join.TreeSelectCtx(ctx, tree, tab, q, op, core.BreadthFirst); err != nil {
				b.Fatal(err)
			}
			spans = len(trace.Spans())
		}
		b.ReportMetric(float64(spans), "spans")
	})
}

// --- Ablations of design choices -------------------------------------------

func BenchmarkAblationRTreeSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	world := geom.NewRect(0, 0, 1000, 1000)
	rects := datagen.UniformRects(rng, 2000, world, 1, 25)
	for _, split := range []rtree.SplitStrategy{rtree.QuadraticSplit, rtree.LinearSplit} {
		b.Run(split.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr := rtree.MustNew(rtree.Options{MinEntries: 2, MaxEntries: 8, Split: split})
				for id, r := range rects {
					tr.Insert(r, id)
				}
				// Quality probe: nodes visited by a window search.
				visited := tr.Search(geom.NewRect(200, 200, 400, 400), func(rtree.Item) bool { return true })
				b.ReportMetric(float64(visited), "nodes_visited")
			}
		})
	}
}

func BenchmarkAblationSelectTraversal(b *testing.B) {
	pool := newBenchPool(b, 32)
	tab, tree := benchWorkload(b, pool, 6, 4, 4, relation.PlaceSequential)
	q := geom.NewRect(50, 50, 300, 300)
	for _, trav := range []struct {
		name string
		t    core.Traversal
	}{{"breadth_first", core.BreadthFirst}, {"depth_first", core.DepthFirst}} {
		b.Run(trav.name, func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				if err := pool.DropAll(); err != nil {
					b.Fatal(err)
				}
				_, stats, err := join.TreeSelect(tree, tab, q, pred.Overlaps{}, trav.t)
				if err != nil {
					b.Fatal(err)
				}
				reads += stats.PageReads
			}
			b.ReportMetric(float64(reads)/float64(b.N), "page_reads/op")
		})
	}
}

// BenchmarkAblationLocalIndexLambda sweeps the anchor level of the paper's
// §5 "local join index" extension across a self-join, from λ=0 (one global
// join index, strategy III) to λ past the leaves (pure tree join, strategy
// II), reporting the live-evaluation count at each point of the mixture.
func BenchmarkAblationLocalIndexLambda(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tree, _ := datagen.ModelTree(rng, geom.NewRect(0, 0, 1000, 1000), 4, 3)
	op := pred.Overlaps{}
	for lambda := 0; lambda <= 4; lambda++ {
		b.Run(fmt.Sprintf("lambda_%d", lambda), func(b *testing.B) {
			ix, _, err := localindex.Build(tree, op, lambda, 100)
			if err != nil {
				b.Fatal(err)
			}
			var stats localindex.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err = ix.SelfJoin()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.FilterEvals+stats.ExactEvals), "live_evals")
			b.ReportMetric(float64(ix.Pairs()), "stored_pairs")
		})
	}
}

// BenchmarkAblationGridVsTreeJoin compares the address-computation join the
// paper credits to Rotem (grid file, §2.2) against the tree-based join it
// proposes, on the same workload — the two index-supported-join families of
// the paper's taxonomy.
func BenchmarkAblationGridVsTreeJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	world := geom.NewRect(0, 0, 1000, 1000)
	rs := datagen.UniformRects(rng, 600, world, 2, 25)
	ss := datagen.UniformRects(rng, 600, world, 2, 25)
	op := pred.Overlaps{}

	b.Run("gridfile_rotem", func(b *testing.B) {
		gr, err := gridfile.New(world, 8)
		if err != nil {
			b.Fatal(err)
		}
		gs, err := gridfile.New(world, 8)
		if err != nil {
			b.Fatal(err)
		}
		for i, r := range rs {
			if err := gr.Insert(r, i); err != nil {
				b.Fatal(err)
			}
		}
		for i, s := range ss {
			if err := gs.Insert(s, i); err != nil {
				b.Fatal(err)
			}
		}
		var evals int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, stats, err := gridfile.Join(gr, gs, op)
			if err != nil {
				b.Fatal(err)
			}
			evals = stats.ExactEvals
		}
		b.ReportMetric(float64(evals), "exact_evals")
	})
	b.Run("gentree_guenther", func(b *testing.B) {
		trR := rtree.MustNew(rtree.DefaultOptions())
		trS := rtree.MustNew(rtree.DefaultOptions())
		for i, r := range rs {
			trR.Insert(r, i)
		}
		for i, s := range ss {
			trS.Insert(s, i)
		}
		var evals int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Join(trR.Generalization(), trS.Generalization(), op, nil)
			if err != nil {
				b.Fatal(err)
			}
			evals = res.Stats.ExactEvals
		}
		b.ReportMetric(float64(evals), "exact_evals")
	})
}

// BenchmarkAblationBulkLoad compares STR bulk loading against one-at-a-time
// insertion: build time and the directory quality (nodes visited per window
// query) of the resulting trees.
func BenchmarkAblationBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	world := geom.NewRect(0, 0, 1000, 1000)
	rects := datagen.UniformRects(rng, 5000, world, 1, 20)
	items := make([]rtree.Item, len(rects))
	for i, r := range rects {
		items[i] = rtree.Item{Obj: r, ID: i}
	}
	opts := rtree.Options{MinEntries: 4, MaxEntries: 8}
	query := geom.NewRect(300, 300, 500, 500)

	b.Run("insert_built", func(b *testing.B) {
		var visits int
		for i := 0; i < b.N; i++ {
			tr := rtree.MustNew(opts)
			for _, it := range items {
				tr.Insert(it.Obj, it.ID)
			}
			visits = tr.Search(query, func(rtree.Item) bool { return true })
		}
		b.ReportMetric(float64(visits), "nodes_visited")
	})
	b.Run("str_bulk_loaded", func(b *testing.B) {
		var visits int
		for i := 0; i < b.N; i++ {
			tr, err := rtree.BulkLoad(opts, items)
			if err != nil {
				b.Fatal(err)
			}
			visits = tr.Search(query, func(rtree.Item) bool { return true })
		}
		b.ReportMetric(float64(visits), "nodes_visited")
	})
}

func BenchmarkAblationZOrderDedup(b *testing.B) {
	world := geom.NewRect(0, 0, 1024, 1024)
	g, err := zorder.NewGrid(world, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rs := datagen.UniformRects(rng, 400, world, 10, 80)
	ss := datagen.UniformRects(rng, 400, world, 10, 80)
	for _, opt := range []struct {
		name string
		o    zorder.JoinOptions
	}{
		{"raw_duplicates", zorder.JoinOptions{Dedup: false, Exact: true}},
		{"deduplicated", zorder.JoinOptions{Dedup: true, Exact: true}},
	} {
		b.Run(opt.name, func(b *testing.B) {
			var dup int
			for i := 0; i < b.N; i++ {
				_, stats := g.OverlapJoin(rs, ss, opt.o)
				dup = stats.Duplicates
			}
			b.ReportMetric(float64(dup), "duplicate_reports")
		})
	}
}

func BenchmarkAblationZOrderGridLevel(b *testing.B) {
	world := geom.NewRect(0, 0, 1024, 1024)
	rng := rand.New(rand.NewSource(8))
	rs := datagen.UniformRects(rng, 300, world, 5, 60)
	ss := datagen.UniformRects(rng, 300, world, 5, 60)
	for _, level := range []uint{4, 6, 8, 10} {
		g, err := zorder.NewGrid(world, level)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("level_%02d", level), func(b *testing.B) {
			var elems int
			for i := 0; i < b.N; i++ {
				_, stats := g.OverlapJoin(rs, ss, zorder.JoinOptions{Dedup: true, Exact: true})
				elems = stats.ElementsR + stats.ElementsS
			}
			b.ReportMetric(float64(elems), "z_elements")
		})
	}
}

// BenchmarkFig8RecorderOverhead prices the always-on flight recorder on
// the measured Figure-8 workload. "record_event" is one live emission
// into the ring (the marginal cost every recorded event pays; must be
// allocation-free); "record_event_nil" is the nil-recorder floor (what a
// compiled-out hook would cost); "query_always_on" runs the full query
// path with the recorder armed exactly as it ships — per-query overhead
// is events/query × record_event, which must keep the always-on path
// within 2% of an uninstrumented build. EXPERIMENTS.md tabulates the
// measured numbers.
func BenchmarkFig8RecorderOverhead(b *testing.B) {
	b.Run("record_event", func(b *testing.B) {
		r := obs.NewRecorder(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Record(obs.RecQueryFinish, obs.RecCodeOK, uint64(i), int64(i), 0)
		}
	})
	b.Run("record_event_nil", func(b *testing.B) {
		var r *obs.Recorder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Record(obs.RecQueryFinish, obs.RecCodeOK, uint64(i), int64(i), 0)
		}
	})
	b.Run("query_always_on", func(b *testing.B) {
		db, err := Open(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		rc, err := db.CreateCollection("r")
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 500; i++ {
			x, y := rng.Float64()*900, rng.Float64()*900
			if _, err := rc.Insert(NewRect(x, y, x+10, y+10), ""); err != nil {
				b.Fatal(err)
			}
		}
		q := NewRect(100, 100, 420, 420)
		ctx := context.Background()
		// Sequence numbers are global and monotonic, so the emitted-event
		// count stays exact even after the ring wraps.
		maxSeq := func() uint64 {
			var m uint64
			for _, e := range obs.Events() {
				if e.Seq > m {
					m = e.Seq
				}
			}
			return m
		}
		before := maxSeq()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.SelectContext(ctx, rc, q, Overlaps(), TreeStrategy); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(maxSeq()-before)/float64(b.N), "events/query")
	})
}
