package spatialjoin

import (
	"context"
	"errors"
	"strconv"
	"time"

	"spatialjoin/internal/obs"
	"spatialjoin/internal/parallel"
)

// Trace re-exports the per-query tracer so embedders arm tracing without
// importing internal packages: ctx, trace := spatialjoin.WithTrace(ctx),
// run queries with ctx, then render trace.WriteTree / WriteChromeTrace.
type Trace = obs.Trace

// WithTrace arms per-query tracing on the context. Every Join/Select run
// under the returned context records its descent — query, executor, and
// per-level spans with cost-model unit deltas — into the returned trace.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	return obs.WithTrace(ctx)
}

// queryLatencyBuckets are the spatialjoin_query_seconds histogram bounds:
// microsecond-scale cached lookups through multi-second degraded scans.
var queryLatencyBuckets = []float64{
	1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30,
}

// registerMetrics wires every layer's existing atomic counters into the
// configured registry as scrape-time samplers, so the hot paths pay
// nothing: only the WAL observer (a histogram feed per sync) and the
// parallel pool's gated task accounting add work, and only once metrics
// are enabled. Called from Open when Config.Metrics is set.
//
// The registry is get-or-create keyed by metric name, so two databases
// sharing one registry would overwrite each other's samplers; give each
// database its own registry (scrape handlers can serve several).
func (db *Database) registerMetrics() {
	m := db.cfg.Metrics
	if m == nil {
		return
	}
	count := func(name, help string, fn func() int64, labels ...obs.Label) {
		m.CounterFunc(name, help, func() float64 { return float64(fn()) }, labels...)
	}

	pool := db.pool
	count("spatialjoin_pool_logical_reads_total", "Page fetches served by the buffer pool.",
		func() int64 { return pool.Stats().LogicalReads })
	count("spatialjoin_pool_misses_total", "Pool fetches that went to the disk (physical reads).",
		func() int64 { return pool.Stats().Misses })
	count("spatialjoin_pool_evictions_total", "Frames evicted by the pool's LRU policy.",
		func() int64 { return pool.Stats().Evictions })
	count("spatialjoin_pool_read_retries_total", "Physical page reads retried after a transient fault.",
		func() int64 { return pool.Stats().ReadRetries })
	count("spatialjoin_pool_write_retries_total", "Physical page writes retried after a transient fault.",
		func() int64 { return pool.Stats().WriteRetries })
	count("spatialjoin_pool_wal_syncs_total", "WAL syncs forced by dirty-frame write-back.",
		func() int64 { return pool.Stats().WALSyncs })
	m.GaugeFunc("spatialjoin_pool_hit_ratio", "Fraction of pool fetches served without disk I/O.",
		func() float64 {
			s := pool.Stats()
			if s.LogicalReads == 0 {
				return 0
			}
			return 1 - float64(s.Misses)/float64(s.LogicalReads)
		})

	disk := pool.Disk()
	count("spatialjoin_disk_reads_total", "Physical page reads at the device, including fault retries.",
		func() int64 { return disk.Stats().Reads })
	count("spatialjoin_disk_writes_total", "Physical page writes at the device, including fault retries.",
		func() int64 { return disk.Stats().Writes })
	count("spatialjoin_disk_read_faults_total", "Injected or detected read faults at the device.",
		func() int64 { return disk.Stats().ReadFaults })
	count("spatialjoin_disk_write_faults_total", "Injected or detected write faults at the device.",
		func() int64 { return disk.Stats().WriteFaults })

	if w := db.wal; w != nil {
		count("spatialjoin_wal_records_total", "Records appended to the write-ahead log.",
			func() int64 { return w.Stats().Records })
		count("spatialjoin_wal_commits_total", "Transactions committed through the log.",
			func() int64 { return w.Stats().Commits })
		count("spatialjoin_wal_syncs_total", "Log syncs (group-commit flushes).",
			func() int64 { return w.Stats().Syncs })
		count("spatialjoin_wal_page_writes_total", "Physical log pages written.",
			func() int64 { return w.Stats().PageWrites })
		count("spatialjoin_wal_bytes_logged_total", "Payload bytes appended to the log.",
			func() int64 { return w.Stats().BytesLogged })
		count("spatialjoin_wal_padding_bytes_total", "Log page bytes wasted sealing partial pages.",
			func() int64 { return w.Stats().PaddingBytes })
		sizeBuckets := []float64{1, 2, 4, 8, 16, 32, 64}
		batch := m.Histogram("spatialjoin_wal_commit_batch_size",
			"Commits batched per group-commit sync.", sizeBuckets)
		pages := m.Histogram("spatialjoin_wal_sync_pages",
			"Log pages written per sync.", sizeBuckets)
		w.SetObserver(func(batchCommits, pagesWritten int) {
			batch.Observe(float64(batchCommits))
			pages.Observe(float64(pagesWritten))
		})
		count("spatialjoin_wal_aborts_total", "Transactions aborted through the log.",
			func() int64 { return w.Stats().Aborts })
		count("spatialjoin_wal_truncated_pages_total", "Log pages reclaimed by checkpoint truncation.",
			func() int64 { return w.Stats().TruncatedPages })
		count("spatialjoin_checkpoints_total", "Fuzzy checkpoints completed.",
			func() int64 { return w.Stats().Checkpoints })
		count("spatialjoin_checkpoint_pages_flushed_total", "Dirty frames written back by checkpoint sweeps.",
			func() int64 { return db.CheckpointTotals().PagesFlushed })
		m.GaugeFunc("spatialjoin_checkpoint_redo_floor", "Redo floor LSN of the last checkpoint.",
			func() float64 { return float64(db.CheckpointTotals().LastFloor) })
		m.GaugeFunc("spatialjoin_checkpoint_last_seconds", "Duration of the last checkpoint.",
			func() float64 { return db.CheckpointTotals().LastDuration.Seconds() })

		// Recovery gauges are constants for the life of the database: the
		// stats of the pass that produced it (all zero after a plain Open).
		rec := db.recovered
		m.GaugeFunc("spatialjoin_recovery_records_replayed", "Committed images replayed by the recovery that produced this database.",
			func() float64 { return float64(rec.RecordsReplayed) })
		m.GaugeFunc("spatialjoin_recovery_records_skipped", "Committed images the checkpoint proved already durable.",
			func() float64 { return float64(rec.RecordsSkipped) })
		m.GaugeFunc("spatialjoin_recovery_index_rebuilds_skipped", "Persisted indices loaded from the manifest instead of rebuilt.",
			func() float64 { return float64(rec.IndexRebuildsSkipped) })
	}

	parallel.EnableMetrics()
	count("spatialjoin_parallel_runs_total", "Worker-pool fan-outs started.",
		func() int64 { return parallel.Stats().Runs })
	count("spatialjoin_parallel_tasks_total", "Worker-pool tasks completed.",
		func() int64 { return parallel.Stats().Tasks })
	m.CounterFunc("spatialjoin_parallel_busy_seconds_total", "Total time all workers spent inside tasks.",
		func() float64 { return float64(parallel.Stats().BusyNanos) / 1e9 })
	workers := parallel.Workers(db.cfg.Workers)
	if workers > 64 {
		workers = 64
	}
	for w := 0; w < workers; w++ {
		slot := w
		m.CounterFunc("spatialjoin_parallel_worker_busy_seconds_total",
			"Per-worker-slot time spent inside tasks.",
			func() float64 { return float64(parallel.Stats().WorkerBusyNanos[slot]) / 1e9 },
			obs.L("worker", strconv.Itoa(slot)))
	}
}

// queryObs carries one query's observability state: the armed trace (nil
// when tracing is off), its root span, and the wall-clock start feeding
// the latency histogram. The zero cost of the off path is one TraceFrom
// lookup plus a time.Now.
type queryObs struct {
	db       *Database
	trace    *obs.Trace
	span     obs.SpanID
	kind     string
	strategy Strategy
	start    time.Time
}

// recKindCode maps the query kind onto the flight recorder's code space.
func recKindCode(kind string) uint8 {
	if kind == "join" {
		return obs.RecCodeJoin
	}
	return obs.RecCodeSelect
}

// beginQuery opens the query's root span (named by kind: "join" or
// "select"), rewires the context so executor spans nest under it, and
// drops a query_start event into the always-on flight recorder (with the
// trace's ID when traced, so a post-incident dump correlates with the
// caller's span tree).
func (db *Database) beginQuery(ctx context.Context, kind string, strategy Strategy) (context.Context, queryObs) {
	q := queryObs{db: db, kind: kind, strategy: strategy, start: time.Now()}
	q.trace = obs.TraceFrom(ctx)
	if q.trace != nil {
		q.span = q.trace.Begin(obs.SpanFromContext(ctx), kind)
		q.trace.Annotate(q.span, obs.Str("strategy", strategy.String()))
		ctx = obs.ContextWithSpan(ctx, q.span)
	}
	obs.Record(obs.RecQueryStart, recKindCode(kind), q.trace.ID(), int64(strategy), 0)
	return ctx, q
}

// downgrade records the strategy fallback on the trace and the metrics
// plane at the moment it is decided, so a trace of a degraded query shows
// when — and why — the planner abandoned the requested strategy.
func (q *queryObs) downgrade(cause error) {
	q.trace.Event(q.span, "downgrade",
		obs.Str("from", q.strategy.String()),
		obs.Str("to", ScanStrategy.String()),
		obs.Str("error", cause.Error()))
	if m := q.db.cfg.Metrics; m != nil {
		m.Counter("spatialjoin_query_downgrades_total",
			"Queries degraded to the scan strategy after a permanent index fault.",
			obs.L("kind", q.kind)).Inc()
	}
}

// end closes the query span with the final stats and outcome — also on
// failure, so an errored or degraded query still emits a complete trace —
// feeds the query counters and latency histogram, and lands query_finish
// (plus slow_query, over Config.SlowQuery) in the flight recorder.
func (q *queryObs) end(stats Stats, err error) {
	outcome := "ok"
	recCode := obs.RecCodeOK
	switch {
	case err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)):
		outcome = "timeout"
		recCode = obs.RecCodeTimeout
	case err != nil:
		outcome = "error"
		recCode = obs.RecCodeError
	case stats.Downgrades > 0:
		outcome = "degraded"
		recCode = obs.RecCodeDegraded
	}
	elapsed := time.Since(q.start)
	obs.Record(obs.RecQueryFinish, recCode, q.trace.ID(), elapsed.Nanoseconds(), stats.PageReads)
	if slow := q.db.cfg.SlowQuery; slow > 0 && elapsed >= slow {
		obs.Record(obs.RecSlowQuery, recCode, q.trace.ID(), elapsed.Nanoseconds(), slow.Nanoseconds())
	}
	if q.trace != nil {
		if err != nil {
			q.trace.Event(q.span, "error", obs.Str("error", err.Error()))
		}
		q.trace.End(q.span,
			obs.Str("outcome", outcome),
			obs.Int("filter_evals", stats.FilterEvals),
			obs.Int("exact_evals", stats.ExactEvals),
			obs.Int("page_reads", stats.PageReads),
			obs.Int("index_reads", stats.IndexReads),
			obs.Int("downgrades", stats.Downgrades),
		)
	}
	if m := q.db.cfg.Metrics; m != nil {
		labels := []obs.Label{obs.L("kind", q.kind), obs.L("strategy", q.strategy.String())}
		m.Counter("spatialjoin_queries_total", "Queries executed, by kind, strategy, and outcome.",
			append(labels[:2:2], obs.L("outcome", outcome))...).Inc()
		m.Histogram("spatialjoin_query_seconds", "Query wall time in seconds.",
			queryLatencyBuckets, labels...).Observe(elapsed.Seconds())
	}
}
