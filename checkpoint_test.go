package spatialjoin

// Root-level checkpoint tests: bounded recovery skips work the checkpoint
// proved durable, truncation reclaims the log without changing observable
// state, the manifest lets clean reopens load persisted indices instead of
// rebuilding them, and a fuzzy checkpoint runs safely alongside a writer.

import (
	"sync"
	"testing"
)

// runSteps drives a workload prefix against db, failing the test on any
// step error, and returns the final model.
func runSteps(t *testing.T, db *Database, steps []crashStep) crashModel {
	t.Helper()
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatalf("step %s: %v", st.name, err)
		}
	}
	return steps[len(steps)-1].model
}

// mustMatch asserts db's observable state equals the model across all four
// strategies.
func mustMatch(t *testing.T, db *Database, m crashModel, label string) {
	t.Helper()
	ok, err := stateMatches(db, m)
	if err != nil {
		t.Fatalf("%s: verifying state: %v", label, err)
	}
	if !ok {
		t.Fatalf("%s: state does not match the committed workload", label)
	}
}

// TestCheckpointBoundsReopen checkpoints mid-workload (non-truncating, so
// every record stays scannable) and checks the subsequent recovery skips
// exactly the work the checkpoint made durable while still reconstructing
// the full committed state.
func TestCheckpointBoundsReopen(t *testing.T) {
	cfg := crashConfig(1, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := crashSteps()
	mid := len(steps) / 2
	runSteps(t, db, steps[:mid])
	cs, err := db.checkpoint(false)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if cs.EndLSN <= cs.BeginLSN {
		t.Fatalf("checkpoint LSNs out of order: %+v", cs)
	}
	if cs.PagesFlushed == 0 {
		t.Error("mid-workload checkpoint flushed no dirty frames")
	}
	final := runSteps(t, db, steps[mid:])

	rdb, stats, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if stats.CheckpointLSN != cs.BeginLSN {
		t.Errorf("recovery bounded by checkpoint %d, want %d", stats.CheckpointLSN, cs.BeginLSN)
	}
	if stats.RecordsSkipped == 0 {
		t.Error("recovery skipped nothing despite a covering checkpoint")
	}
	if stats.RecordsReplayed == 0 {
		t.Error("recovery replayed nothing despite post-checkpoint commits")
	}
	mustMatch(t, rdb, final, "bounded recovery")
}

// TestCheckpointTruncatesLog checkpoints after the full workload and checks
// truncation reclaims log pages, recovery starts above LSN 0, replays
// nothing, and loads both collections' R-trees from the persisted index
// files named in the manifest.
func TestCheckpointTruncatesLog(t *testing.T) {
	cfg := crashConfig(1, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := runSteps(t, db, crashSteps())
	cs, err := db.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if cs.PagesTruncated == 0 {
		t.Error("truncating checkpoint reclaimed no log pages")
	}
	if tot := db.CheckpointTotals(); tot.Checkpoints != 1 || tot.LastFloor != cs.RedoFloor {
		t.Errorf("CheckpointTotals = %+v, want 1 checkpoint at floor %d", tot, cs.RedoFloor)
	}

	rdb, stats, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if stats.BaseLSN == 0 {
		t.Error("recovery scanned from LSN 0 after truncation")
	}
	if stats.RecordsReplayed != 0 {
		t.Errorf("recovery replayed %d records after a quiescent checkpoint", stats.RecordsReplayed)
	}
	if stats.IndexRebuildsSkipped != 2 {
		t.Errorf("IndexRebuildsSkipped = %d, want 2 (both collections trusted)", stats.IndexRebuildsSkipped)
	}
	if rdb.RecoveryInfo() != stats {
		t.Error("RecoveryInfo does not echo the Reopen stats")
	}
	mustMatch(t, rdb, final, "post-truncation recovery")
}

// TestReopenRebuildsOnlyTouchedIndices inserts into one collection after
// the checkpoint: replay touches that collection's files, so its R-tree is
// rebuilt from the heap, while the untouched collection still fast-loads
// from its persisted index file.
func TestReopenRebuildsOnlyTouchedIndices(t *testing.T) {
	cfg := crashConfig(1, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := crashSteps()
	final := runSteps(t, db, steps)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	r, _ := db.Collection("r")
	if _, err := r.Insert(crashRect(9), "r9"); err != nil {
		t.Fatalf("post-checkpoint insert: %v", err)
	}
	final.rectsR = append(append([]Rect(nil), final.rectsR...), crashRect(9))

	rdb, stats, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if stats.RecordsReplayed == 0 {
		t.Error("post-checkpoint insert was not replayed")
	}
	if stats.IndexRebuildsSkipped != 1 {
		t.Errorf("IndexRebuildsSkipped = %d, want 1 (r touched, s trusted)", stats.IndexRebuildsSkipped)
	}
	mustMatch(t, rdb, final, "partial-trust recovery")
}

// TestCheckpointConcurrentWithWriters runs the workload from one goroutine
// while another loops truncating checkpoints, then verifies both the live
// database and a recovered one. Run under -race this also proves the
// protocol's locking story.
func TestCheckpointConcurrentWithWriters(t *testing.T) {
	cfg := crashConfig(2, 1)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := crashSteps()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := db.Checkpoint(); err != nil {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
		}
	}()
	final := runSteps(t, db, steps)
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	mustMatch(t, db, final, "live database")

	rdb, _, err := Reopen(cfg, db.Device())
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	mustMatch(t, rdb, final, "recovery after concurrent checkpoints")
}
