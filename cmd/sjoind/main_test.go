package main

import (
	"os"
	"path/filepath"
	"testing"

	"spatialjoin"
)

// testDB opens a small WAL-backed database with a few rectangles in
// collections r and s.
func testDB(t *testing.T) (*spatialjoin.Database, spatialjoin.Config) {
	t.Helper()
	cfg := spatialjoin.DefaultConfig()
	cfg.PageSize = 512
	cfg.BufferPages = 64
	cfg.Workers = 1
	cfg.WAL = true
	cfg.WALGroupCommit = 1
	db, err := spatialjoin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"r", "s"} {
		col, err := db.CreateCollection(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			x := float64(i * 40)
			if _, err := col.Insert(spatialjoin.NewRect(x, x, x+30, x+30), ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, cfg
}

// TestExportSnapshotFileAtomic is the regression test for the SIGUSR1
// export path: the published path must appear atomically (temp file
// fsynced then renamed, never a torn stream), the temp file must not
// survive, and the published stream must seed a byte-identical replica.
func TestExportSnapshotFileAtomic(t *testing.T) {
	db, cfg := testDB(t)
	defer db.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")

	if err := exportSnapshotFile(db, path); err != nil {
		t.Fatalf("exportSnapshotFile: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the rename: %v", err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	replica, info, err := spatialjoin.SeedFromSnapshot(cfg, f)
	if err != nil {
		t.Fatalf("published snapshot does not seed: %v", err)
	}
	defer replica.Close()
	if info.Pages == 0 {
		t.Errorf("implausible snapshot info: %+v", info)
	}
	srcR, _ := db.Collection("r")
	srcS, _ := db.Collection("s")
	repR, _ := replica.Collection("r")
	repS, _ := replica.Collection("s")
	want, err := fingerprint(srcR, srcS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fingerprint(repR, repS)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("seeded fingerprint %016x, want %016x", got, want)
	}
}

// TestExportSnapshotFileFailurePublishesNothing proves a failed export
// can never leave anything — torn or otherwise — at the published path.
func TestExportSnapshotFileFailurePublishesNothing(t *testing.T) {
	db, _ := testDB(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")

	// Closing the database makes the checkpoint inside ExportSnapshot fail
	// after the temp file is already created.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exportSnapshotFile(db, path); err == nil {
		t.Fatal("export off a closed database succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed export published %s: %v", path, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("failed export left its temp file: %v", err)
	}
}
