// Command sjoind is the spatial query daemon: it loads a synthetic
// workload (or accepts the flags' sizing of one), builds the overlaps
// join index, and serves the internal/wire framed protocol with
// admission control and graceful shutdown.
//
// Usage:
//
//	sjoind -addr 127.0.0.1:7654 -metrics-addr 127.0.0.1:7655
//	sjoind -rects 5000 -max-queries 8 -query-timeout 2s
//
// SIGINT/SIGTERM begins a graceful drain: in-flight queries finish and
// stream their results, new work is refused with typed SHUTTING_DOWN
// verdicts, and the process exits once every session unwinds (or the
// -drain-timeout forces it).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/server"
	"spatialjoin/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sjoind:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7654", "wire-protocol listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and pprof on this address")

	rects := flag.Int("rects", 2000, "rectangles per collection in the synthetic workload")
	seed := flag.Int64("seed", 42, "workload generator seed")
	world := flag.Float64("world", 10000, "world square side length")

	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "join worker goroutines")
	bufferPages := flag.Int("buffer-pages", 256, "buffer pool capacity in pages")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none); expiry answers TIMEOUT")

	maxConns := flag.Int("max-conns", server.DefaultMaxConns, "concurrent session limit; excess connections are refused SERVER_BUSY")
	maxQueries := flag.Int("max-queries", 0, "concurrent query limit (0 = 4×GOMAXPROCS); excess queries are shed SERVER_BUSY")
	admitWait := flag.Duration("admit-wait", 0, "how long a query may wait for an admission slot before being shed")
	batch := flag.Int("batch", server.DefaultBatchSize, "results streamed per response frame")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")

	faultSeed := flag.Int64("fault-seed", 0, "enable the fault-injecting device with this seed (0 = healthy disk)")
	faultReadRate := flag.Float64("fault-read-rate", 0, "with -fault-seed: transient read fault probability")
	readLatency := flag.Duration("read-latency", 0, "with -fault-seed: injected device read latency")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := spatialjoin.DefaultConfig()
	cfg.Workers = *workers
	cfg.BufferPages = *bufferPages
	cfg.QueryTimeout = *queryTimeout
	cfg.Metrics = reg
	if *faultSeed != 0 {
		cfg.Fault = &fault.Options{
			Seed:              *faultSeed,
			TransientReadRate: *faultReadRate,
			ReadLatency:       *readLatency,
		}
		cfg.Retry = &storage.RetryPolicy{MaxAttempts: 10, Seed: *faultSeed}
	}
	db, err := spatialjoin.Open(cfg)
	if err != nil {
		return err
	}

	// The dataset is loaded and indexed before serving starts: the
	// server's read paths are lock-free precisely because nothing mutates
	// the database once Serve begins.
	start := time.Now()
	w := geom.NewRect(0, 0, *world, *world)
	rng := rand.New(rand.NewSource(*seed))
	r, err := load(db, "r", datagen.UniformRects(rng, *rects, w, 2, w.MaxX/100))
	if err != nil {
		return err
	}
	s, err := load(db, "s", datagen.ClusteredRects(rng, *rects, 16, w, w.MaxX/8, w.MaxX/150))
	if err != nil {
		return err
	}
	if _, _, err := db.BuildJoinIndex(r, s, spatialjoin.Overlaps()); err != nil {
		return err
	}
	fmt.Printf("sjoind: loaded collections r and s (%d rects each), join index built in %v\n",
		*rects, time.Since(start).Round(time.Millisecond))

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("sjoind: metrics on http://%s/metrics\n", mln.Addr())
		msrv := &http.Server{Handler: obs.NewMux(reg)}
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "sjoind: metrics server:", err)
			}
		}()
		defer func() { _ = msrv.Close() }()
	}

	srv := server.New(db, server.Options{
		MaxConns:   *maxConns,
		MaxQueries: *maxQueries,
		AdmitWait:  *admitWait,
		BatchSize:  *batch,
		Metrics:    reg,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("sjoind: serving wire protocol on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		fmt.Printf("sjoind: %v: draining (up to %v)\n", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sjoind: forced exit:", err)
		}
		if err := <-serveErr; err != nil && err != server.ErrServerClosed {
			return err
		}
		fmt.Println("sjoind: drained, bye")
		return nil
	}
}

// load fills a fresh collection with rects.
func load(db *spatialjoin.Database, name string, rects []geom.Rect) (*spatialjoin.Collection, error) {
	col, err := db.CreateCollection(name)
	if err != nil {
		return nil, err
	}
	for _, r := range rects {
		if _, err := col.Insert(r, ""); err != nil {
			return nil, err
		}
	}
	return col, nil
}
