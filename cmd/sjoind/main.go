// Command sjoind is the spatial query daemon: it loads a synthetic
// workload (or accepts the flags' sizing of one), builds the overlaps
// join index, and serves the internal/wire framed protocol with
// admission control and graceful shutdown.
//
// Usage:
//
//	sjoind -addr 127.0.0.1:7654 -metrics-addr 127.0.0.1:7655
//	sjoind -rects 5000 -max-queries 8 -query-timeout 2s
//
// SIGINT/SIGTERM begins a graceful drain: in-flight queries finish and
// stream their results, new work is refused with typed SHUTTING_DOWN
// verdicts, and the process exits once every session unwinds (or the
// -drain-timeout forces it), closing the database so the last
// group-commit buffer is durable.
//
// With -wal, -checkpoint-every runs a periodic truncating fuzzy
// checkpoint, and SIGUSR1 exports a replica-seeding snapshot to
// -snapshot-path (written atomically: temp file, then rename). A fresh
// daemon boots from such a file with -seed-from instead of generating
// the workload; the startup banner's "dataset fingerprint" line is
// identical between a source and its seeded replicas.
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/repl"
	"spatialjoin/internal/server"
	"spatialjoin/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sjoind:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7654", "wire-protocol listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and pprof on this address")

	rects := flag.Int("rects", 2000, "rectangles per collection in the synthetic workload")
	seed := flag.Int64("seed", 42, "workload generator seed")
	world := flag.Float64("world", 10000, "world square side length")

	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "join worker goroutines")
	bufferPages := flag.Int("buffer-pages", 256, "buffer pool capacity in pages")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none); expiry answers TIMEOUT")
	slowQuery := flag.Duration("slow-query", 0, "record queries slower than this in the flight recorder as slow_query events (0 = off)")

	maxConns := flag.Int("max-conns", server.DefaultMaxConns, "concurrent session limit; excess connections are refused SERVER_BUSY")
	maxQueries := flag.Int("max-queries", 0, "concurrent query limit (0 = 4×GOMAXPROCS); excess queries are shed SERVER_BUSY")
	admitWait := flag.Duration("admit-wait", 0, "how long a query may wait for an admission slot before being shed")
	batch := flag.Int("batch", server.DefaultBatchSize, "results streamed per response frame")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")

	faultSeed := flag.Int64("fault-seed", 0, "enable the fault-injecting device with this seed (0 = healthy disk)")
	faultReadRate := flag.Float64("fault-read-rate", 0, "with -fault-seed: transient read fault probability")
	readLatency := flag.Duration("read-latency", 0, "with -fault-seed: injected device read latency")

	useWAL := flag.Bool("wal", false, "run on a write-ahead-logged database (required for checkpoints and snapshots)")
	walGroup := flag.Int("wal-group", 64, "with -wal: group-commit size")
	ckptEvery := flag.Duration("checkpoint-every", 0, "with -wal: take a truncating fuzzy checkpoint this often (0 = never)")
	snapPath := flag.String("snapshot-path", "", "with -wal: write a replica-seeding snapshot to this file on SIGUSR1")
	seedFrom := flag.String("seed-from", "", "seed the dataset from a snapshot file instead of generating it (implies -wal)")

	replicateFrom := flag.String("replicate-from", "", "run as a continuously replicating read-only replica of the primary at this address (implies -wal)")
	maxLag := flag.Duration("max-lag", 0, "with -replicate-from: answer STALE when nothing has been heard from the primary for this long (0 = never)")
	maxLagBytes := flag.Int64("max-lag-bytes", 0, "with -replicate-from: answer STALE when trailing the primary by more than this many log bytes (0 = never)")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := spatialjoin.DefaultConfig()
	cfg.Workers = *workers
	cfg.BufferPages = *bufferPages
	cfg.QueryTimeout = *queryTimeout
	cfg.SlowQuery = *slowQuery
	cfg.Metrics = reg
	cfg.WAL = *useWAL || *seedFrom != "" || *replicateFrom != ""
	cfg.WALGroupCommit = *walGroup
	if *faultSeed != 0 {
		cfg.Fault = &fault.Options{
			Seed:              *faultSeed,
			TransientReadRate: *faultReadRate,
			ReadLatency:       *readLatency,
		}
		cfg.Retry = &storage.RetryPolicy{MaxAttempts: 10, Seed: *faultSeed}
	}
	if (*ckptEvery != 0 || *snapPath != "") && !cfg.WAL {
		return fmt.Errorf("-checkpoint-every and -snapshot-path require -wal")
	}
	if *replicateFrom != "" {
		switch {
		case cfg.Fault != nil:
			return fmt.Errorf("-replicate-from cannot run with fault injection (delta application patches the raw disk)")
		case *seedFrom != "":
			return fmt.Errorf("-replicate-from seeds itself over the wire; drop -seed-from")
		case *snapPath != "" || *ckptEvery != 0:
			return fmt.Errorf("-replicate-from owns the database lifecycle; drop -snapshot-path and -checkpoint-every")
		}
		return runReplica(reg, cfg, *replicateFrom, *maxLag, *maxLagBytes, *addr, *metricsAddr, serveOpts{
			maxConns: *maxConns, maxQueries: *maxQueries, admitWait: *admitWait,
			batch: *batch, drainTimeout: *drainTimeout,
		})
	}

	// The dataset is loaded (or seeded) and indexed before serving starts:
	// the server's read paths are lock-free precisely because nothing
	// mutates the database once Serve begins — the checkpointer and
	// snapshot exporter only flush and read.
	start := time.Now()
	var db *spatialjoin.Database
	var r, s *spatialjoin.Collection
	if *seedFrom != "" {
		f, err := os.Open(*seedFrom)
		if err != nil {
			return err
		}
		sdb, info, err := spatialjoin.SeedFromSnapshot(cfg, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("seeding from %s: %w", *seedFrom, err)
		}
		db = sdb
		var ok bool
		if r, ok = db.Collection("r"); !ok {
			return fmt.Errorf("snapshot %s has no collection r", *seedFrom)
		}
		if s, ok = db.Collection("s"); !ok {
			return fmt.Errorf("snapshot %s has no collection s", *seedFrom)
		}
		fmt.Printf("sjoind: seeded from %s (%d pages, checkpoint LSN %d) in %v\n",
			*seedFrom, info.Pages, info.CheckpointLSN, time.Since(start).Round(time.Millisecond))
	} else {
		var err error
		db, err = spatialjoin.Open(cfg)
		if err != nil {
			return err
		}
		w := geom.NewRect(0, 0, *world, *world)
		rng := rand.New(rand.NewSource(*seed))
		r, err = load(db, "r", datagen.UniformRects(rng, *rects, w, 2, w.MaxX/100))
		if err != nil {
			return err
		}
		s, err = load(db, "s", datagen.ClusteredRects(rng, *rects, 16, w, w.MaxX/8, w.MaxX/150))
		if err != nil {
			return err
		}
		fmt.Printf("sjoind: loaded collections r and s (%d rects each) in %v\n",
			*rects, time.Since(start).Round(time.Millisecond))
	}
	if !db.HasJoinIndex(r, s, spatialjoin.Overlaps()) {
		if _, _, err := db.BuildJoinIndex(r, s, spatialjoin.Overlaps()); err != nil {
			return err
		}
	}
	fp, err := fingerprint(r, s)
	if err != nil {
		return err
	}
	fmt.Printf("sjoind: dataset fingerprint %016x\n", fp)

	// snapMu serializes the periodic checkpointer against SIGUSR1 snapshot
	// exports and replication snapshot cuts, so an image is never cut while
	// a concurrent checkpoint is moving the redo floor.
	var snapMu sync.Mutex
	stop := make(chan struct{})
	defer close(stop)

	// A WAL-backed primary serves replication streams: WAL tails plus
	// incremental snapshot deltas, with snapshot cuts checkpointing through
	// snapMu like every other image.
	var src *repl.Source
	if cfg.WAL {
		src, err = repl.NewSource(db, repl.SourceOptions{
			Checkpoint: func() error {
				snapMu.Lock()
				defer snapMu.Unlock()
				_, err := db.Checkpoint()
				return err
			},
			Metrics: reg,
		})
		if err != nil {
			return err
		}
		defer src.Close()
		fmt.Println("sjoind: serving replication (WAL tail + snapshot deltas)")
	}
	if cfg.WAL && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				snapMu.Lock()
				// Advance the replication retention pin first: the log then
				// truncates up to what the delta tracker has seen, and a
				// replica left further behind resyncs from a delta.
				if aerr := src.Advance(); aerr != nil {
					fmt.Fprintln(os.Stderr, "sjoind: repl advance:", aerr)
				}
				cs, err := db.Checkpoint()
				snapMu.Unlock()
				if err != nil {
					fmt.Fprintln(os.Stderr, "sjoind: checkpoint:", err)
					return
				}
				fmt.Printf("sjoind: checkpoint at LSN %d: %d pages flushed, %d log pages truncated in %v\n",
					cs.BeginLSN, cs.PagesFlushed, cs.PagesTruncated, cs.Duration.Round(time.Microsecond))
			}
		}()
	}
	if cfg.WAL && *snapPath != "" {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-usr1:
				}
				snapMu.Lock()
				err := exportSnapshotFile(db, *snapPath)
				snapMu.Unlock()
				if err != nil {
					fmt.Fprintln(os.Stderr, "sjoind: snapshot:", err)
				}
			}
		}()
		fmt.Printf("sjoind: SIGUSR1 writes a snapshot to %s\n", *snapPath)
	}

	stopMetrics, err := startMetrics(*metricsAddr, reg)
	if err != nil {
		return err
	}
	defer stopMetrics()

	opts := server.Options{
		MaxConns:   *maxConns,
		MaxQueries: *maxQueries,
		AdmitWait:  *admitWait,
		BatchSize:  *batch,
		Metrics:    reg,
	}
	if src != nil {
		opts.Repl = src
	}
	srv := server.New(db, opts)
	return serveAndDrain(srv, *addr, *drainTimeout, func() error {
		if src != nil {
			src.Close()
		}
		// An orderly close forces the last group-commit buffer durable and
		// writes back every committed page.
		if err := db.Close(); err != nil {
			return fmt.Errorf("closing database: %w", err)
		}
		return nil
	})
}

// serveOpts carries the admission flags shared by primary and replica
// serving.
type serveOpts struct {
	maxConns     int
	maxQueries   int
	admitWait    time.Duration
	batch        int
	drainTimeout time.Duration
}

// runReplica runs the daemon as a continuously replicating read-only
// replica: a Follower seeds itself from the primary and tails its log,
// while the server answers SELECT/JOIN from the follower's current
// database — or with a typed STALE verdict when the lag policy says the
// replica is too far behind to trust.
func runReplica(reg *obs.Registry, cfg spatialjoin.Config, from string, maxLag time.Duration, maxLagBytes int64, addr, metricsAddr string, so serveOpts) error {
	f, err := repl.NewFollower(repl.FollowerOptions{
		Addr:        from,
		Config:      cfg,
		MaxLagBytes: maxLagBytes,
		MaxLagAge:   maxLag,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}
	f.Start()
	fmt.Printf("sjoind: replicating from %s, waiting for the seed\n", from)

	// Metrics come up before the seed wait: NewFollower registers the
	// spatialjoin_repl_* gauges eagerly, so the very first scrape shows the
	// replica seeding (state gauge at 0, zero lag) even while the primary
	// is still unreachable. Starting the listener after the wait would make
	// the replica unobservable during exactly the phase an operator most
	// wants to watch.
	stopMetrics, err := startMetrics(metricsAddr, reg)
	if err != nil {
		f.Close()
		return err
	}
	defer stopMetrics()

	// Block serving until the first seed lands, then banner the dataset
	// fingerprint — identical to the primary's, which is what the chaos
	// smoke diffs.
	start := time.Now()
	for {
		db, release, aerr := f.Acquire()
		if aerr == nil {
			r, okR := db.Collection("r")
			s, okS := db.Collection("s")
			var fp uint64
			var ferr error
			if okR && okS {
				fp, ferr = fingerprint(r, s)
			}
			release()
			if !okR || !okS {
				f.Close()
				return fmt.Errorf("replica seeded without collections r and s")
			}
			if ferr != nil {
				f.Close()
				return ferr
			}
			fmt.Printf("sjoind: seeded from %s in %v\n", from, time.Since(start).Round(time.Millisecond))
			fmt.Printf("sjoind: dataset fingerprint %016x\n", fp)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	srv := server.New(nil, server.Options{
		MaxConns:   so.maxConns,
		MaxQueries: so.maxQueries,
		AdmitWait:  so.admitWait,
		BatchSize:  so.batch,
		Metrics:    reg,
		DB:         f.Acquire,
	})
	fmt.Println("sjoind: serving as read-only replica (writes and replication streams refused)")
	return serveAndDrain(srv, addr, so.drainTimeout, func() error {
		f.Close()
		return nil
	})
}

// startMetrics serves the obs mux on addr when set; the returned stop is
// always safe to call.
func startMetrics(addr string, reg *obs.Registry) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	mln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sjoind: metrics on http://%s/metrics\n", mln.Addr())
	msrv := &http.Server{Handler: obs.NewMux(reg)}
	go func() {
		if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "sjoind: metrics server:", err)
		}
	}()
	return func() { _ = msrv.Close() }, nil
}

// serveAndDrain listens, serves until SIGINT/SIGTERM, drains gracefully,
// and runs the close hook once every session has unwound. SIGQUIT dumps
// the flight recorder to stderr without stopping anything — the live
// post-incident snapshot for a daemon with no metrics listener.
func serveAndDrain(srv *server.Server, addr string, drainTimeout time.Duration, closeAll func() error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sjoind: serving wire protocol on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "sjoind: SIGQUIT: flight recorder dump")
			if err := obs.WriteEventsJSON(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "sjoind: event dump:", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		fmt.Printf("sjoind: %v: draining (up to %v)\n", got, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sjoind: forced exit:", err)
		}
		if err := <-serveErr; err != nil && err != server.ErrServerClosed {
			return err
		}
		if err := closeAll(); err != nil {
			return err
		}
		fmt.Println("sjoind: drained, bye")
		return nil
	}
}

// load fills a fresh collection with rects.
func load(db *spatialjoin.Database, name string, rects []geom.Rect) (*spatialjoin.Collection, error) {
	col, err := db.CreateCollection(name)
	if err != nil {
		return nil, err
	}
	for _, r := range rects {
		if _, err := col.Insert(r, ""); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// fingerprint hashes both collections' geometry in id order, so a seeded
// replica can be checked for byte-identity against its source from the
// startup banner alone.
func fingerprint(cols ...*spatialjoin.Collection) (uint64, error) {
	h := fnv.New64a()
	var buf [32]byte
	for _, c := range cols {
		for id := 0; id < c.Len(); id++ {
			shape, _, err := c.Get(id)
			if err != nil {
				return 0, err
			}
			b := shape.Bounds()
			binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(b.MinX))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b.MinY))
			binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(b.MaxX))
			binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(b.MaxY))
			h.Write(buf[:])
		}
	}
	return h.Sum64(), nil
}

// exportSnapshotFile atomically writes a snapshot: to a temp file first,
// fsynced, then renamed into place — so the published path only ever names
// a stream whose bytes (integrity trailer included) are on stable storage.
// Without the fsync the rename can land before the data does, and a crash
// leaves a torn snapshot at the published path.
func exportSnapshotFile(db *spatialjoin.Database, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	info, err := db.ExportSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Printf("sjoind: snapshot written to %s (%d pages, checkpoint LSN %d)\n",
		path, info.Pages, info.CheckpointLSN)
	return nil
}
