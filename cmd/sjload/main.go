// Command sjload drives a running sjoind with closed-loop query load and
// records the saturation/latency curve: at each swept connection count it
// reports throughput, per-status outcome counts, and latency quantiles of
// the served queries, so the admission-control knee — where excess load
// turns into fast typed SERVER_BUSY refusals instead of queueing — is
// visible in one table.
//
// Usage:
//
//	sjload -addr 127.0.0.1:7654 -curve 1,2,4,8,16,32 -duration 3s
//	sjload -conns 8 -kind select -strategy tree
//
// With -trace, sjload instead issues a single traced query: the trace ID
// is propagated to the server inside the request frame, the server's
// spans (admission wait, engine execution with per-level reads, result
// streaming) come back on the DONE verdict, and sjload prints the merged
// end-to-end span tree plus the read-sum identity — the per-level reads
// in the server's spans telescoping to the PageReads the verdict reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sjload:", err)
		os.Exit(1)
	}
}

// tally accumulates one load level's outcomes.
type tally struct {
	mu        sync.Mutex
	byStatus  map[wire.Status]int64
	transport int64
	served    []time.Duration // latency of queries that reached the engine
	shed      []time.Duration // latency of typed refusals
}

func (tl *tally) record(status wire.Status, shed bool, d time.Duration) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.byStatus[status]++
	if shed {
		tl.shed = append(tl.shed, d)
	} else {
		tl.served = append(tl.served, d)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7654", "sjoind wire address")
	curve := flag.String("curve", "", "comma-separated connection counts to sweep (overrides -conns)")
	conns := flag.Int("conns", 4, "concurrent connections, one in-flight query each")
	duration := flag.Duration("duration", 3*time.Second, "measurement window per load level")
	kind := flag.String("kind", "join", "query kind: join, select, or mix")
	strategy := flag.String("strategy", "tree", "strategy: tree, scan, or index")
	sel := flag.Float64("selectivity", 0.2, "with select queries: probe window as a fraction of the world")
	world := flag.Float64("world", 10000, "world side length the server was started with")
	trace := flag.Bool("trace", false, "issue one traced query and print the merged client+server span tree instead of sweeping load")
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	if *trace {
		return tracedQuery(*addr, *kind, strat, *sel, *world)
	}
	levels := []int{*conns}
	if *curve != "" {
		levels = levels[:0]
		for _, part := range strings.Split(*curve, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -curve element %q", part)
			}
			levels = append(levels, n)
		}
	}

	// One warmup query populates the server's buffer pool so every level
	// measures steady state, not the first cold descent.
	if err := warmup(*addr, strat); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "conns\tqps\tok\tdegraded\tbusy\ttimeout\tother\tp50\tp95\tp99\tshed_p99")
	for _, n := range levels {
		tl, err := drive(*addr, n, *duration, *kind, strat, *sel, *world)
		if err != nil {
			return err
		}
		report(tw, n, *duration, tl)
	}
	return tw.Flush()
}

// tracedQuery issues one traced query and prints the merged span tree:
// the client-side wire span with the server's spans grafted under it, the
// propagated trace ID (the same 16 hex digits the server's flight
// recorder and /debug/events dump carry), and the read-sum identity.
func tracedQuery(addr, kind string, strat uint8, sel, world float64) error {
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ctx, tr := obs.WithTrace(ctx)

	var res *wire.Result
	if kind == "select" {
		probe := geom.NewRect(0, 0, world*sel, world*sel)
		res, err = cli.Select(ctx, "s", probe, wire.Overlaps(), strat)
	} else {
		res, err = cli.Join(ctx, "r", "s", wire.Overlaps(), strat)
	}
	if err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	results := len(res.Matches)
	if kind == "select" {
		results = len(res.IDs)
	}
	fmt.Printf("trace id: %016x\n", tr.ID())
	fmt.Printf("status %s, %d results, %d page reads\n", res.Status, results, res.Stats.PageReads)
	if err := tr.WriteTree(os.Stdout); err != nil {
		return err
	}
	var levelReads int64
	for _, sp := range tr.SpansNamed("level") {
		if v, ok := sp.IntAttr("reads"); ok {
			levelReads += v
		}
	}
	fmt.Printf("read-sum identity: level reads %d, Stats.PageReads %d", levelReads, res.Stats.PageReads)
	if levelReads == res.Stats.PageReads {
		fmt.Println(" (exact)")
	} else {
		fmt.Println(" (MISMATCH)")
		return fmt.Errorf("per-level reads %d do not telescope to PageReads %d", levelReads, res.Stats.PageReads)
	}
	if len(res.Spans) == 0 {
		return fmt.Errorf("server returned no spans; is it running a pre-trace build?")
	}
	return nil
}

func parseStrategy(s string) (uint8, error) {
	switch s {
	case "tree":
		return wire.StrategyTree, nil
	case "scan":
		return wire.StrategyScan, nil
	case "index":
		return wire.StrategyIndex, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func warmup(addr string, strat uint8) error {
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := cli.Join(ctx, "r", "s", wire.Overlaps(), strat)
	if err != nil {
		return err
	}
	if err := res.Err(); err != nil {
		return err
	}
	return nil
}

// drive runs one load level: n connections, each a closed loop issuing
// one query at a time for the whole window.
func drive(addr string, n int, window time.Duration, kind string, strat uint8, sel, world float64) (*tally, error) {
	tl := &tally{byStatus: make(map[wire.Status]int64)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	dialErr := make(chan error, n)
	for i := 0; i < n; i++ {
		cli, err := wire.Dial(addr)
		if err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		wg.Add(1)
		go func(i int, cli *wire.Client) {
			defer wg.Done()
			defer cli.Close()
			worker(stop, tl, cli, i, kind, strat, sel, world, dialErr)
		}(i, cli)
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	select {
	case err := <-dialErr:
		return nil, err
	default:
	}
	return tl, nil
}

// worker is one closed-loop connection: query, record, repeat.
func worker(stop <-chan struct{}, tl *tally, cli *wire.Client, i int, kind string, strat uint8, sel, world float64, fatal chan<- error) {
	ctx := context.Background()
	probe := geom.NewRect(0, 0, world*sel, world*sel)
	for q := 0; ; q++ {
		select {
		case <-stop:
			return
		default:
		}
		doJoin := kind == "join" || (kind == "mix" && (i+q)%2 == 0)
		start := time.Now()
		var res *wire.Result
		var err error
		if doJoin {
			res, err = cli.Join(ctx, "r", "s", wire.Overlaps(), strat)
		} else {
			res, err = cli.Select(ctx, "s", probe, wire.Overlaps(), strat)
		}
		took := time.Since(start)
		if err != nil {
			tl.mu.Lock()
			tl.transport++
			tl.mu.Unlock()
			select {
			case fatal <- err:
			default:
			}
			return
		}
		tl.record(res.Status, res.Flags&wire.FlagShed != 0, took)
	}
}

// quantile returns the q-quantile of sorted latencies, or 0 when empty.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func report(tw *tabwriter.Writer, n int, window time.Duration, tl *tally) {
	sort.Slice(tl.served, func(i, j int) bool { return tl.served[i] < tl.served[j] })
	sort.Slice(tl.shed, func(i, j int) bool { return tl.shed[i] < tl.shed[j] })
	var total int64
	for _, c := range tl.byStatus {
		total += c
	}
	other := total - tl.byStatus[wire.StatusOK] - tl.byStatus[wire.StatusDegraded] -
		tl.byStatus[wire.StatusServerBusy] - tl.byStatus[wire.StatusTimeout]
	fmt.Fprintf(tw, "%d\t%.0f\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\n",
		n,
		float64(total)/window.Seconds(),
		tl.byStatus[wire.StatusOK],
		tl.byStatus[wire.StatusDegraded],
		tl.byStatus[wire.StatusServerBusy],
		tl.byStatus[wire.StatusTimeout],
		other,
		quantile(tl.served, 0.50).Round(10*time.Microsecond),
		quantile(tl.served, 0.95).Round(10*time.Microsecond),
		quantile(tl.served, 0.99).Round(10*time.Microsecond),
		quantile(tl.shed, 0.99).Round(10*time.Microsecond),
	)
}
