// Command sjoin runs measured spatial joins and selections on the
// simulated disk: it generates a synthetic workload, executes one or all of
// the paper's strategies, and prints result counts, predicate evaluations,
// page I/O and the weighted cost (C_Θ = 1, C_IO = 1000 as in Table 3).
//
// Usage:
//
//	sjoin -n 500 -op overlaps -strategy all
//	sjoin -n 1000 -op within:50 -strategy tree -layout shuffled
//	sjoin -mode select -n 2000 -op reachable:10:1
//	sjoin -strategy tree -explain
//	sjoin -metrics-addr 127.0.0.1:8080 -serve-for 1m
//
// The workload is a pair of model generalization trees (clustered or
// shuffled page layout) over uniformly random nested rectangles in a
// 1000×1000 world. With -explain the run is traced and an EXPLAIN ANALYZE
// section follows the result table: the span tree of the query and a
// per-level table placing measured physical reads beside the cost model's
// per-level C_II/D_II I/O terms. With -metrics-addr the process serves
// /metrics (Prometheus text), /debug/vars (expvar), and net/http/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/join"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/storage"
)

func main() {
	var (
		mode        = flag.String("mode", "join", "join or select")
		k           = flag.Int("k", 4, "generalization tree fanout")
		height      = flag.Int("height", 4, "generalization tree height")
		opSpec      = flag.String("op", "overlaps", "operator: overlaps | within:D | nw | includes | containedin | reachable:MIN:SPEED")
		strategy    = flag.String("strategy", "all", "tree | scan | index | all")
		layout      = flag.String("layout", "clustered", "clustered | shuffled")
		buffer      = flag.Int("buffer", 64, "buffer pool pages (M)")
		seed        = flag.Int64("seed", 1, "workload seed")
		timeout     = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed of the injected fault schedule")
		faultRate   = flag.Float64("fault-rate", 0, "transient fault probability per physical page transfer (0 = healthy disk)")
		explain     = flag.Bool("explain", false, "trace the run and print EXPLAIN ANALYZE: the span tree plus per-level measured I/O beside cost-model terms")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and pprof on this address during the run")
		serveFor    = flag.Duration("serve-for", 0, "with -metrics-addr: keep serving this long after the run completes")
		useWAL      = flag.Bool("wal", false, "run the workload through the Database API with a write-ahead log (every insert a transaction)")
		walGroup    = flag.Int("wal-group", 1, "WAL group-commit size (<=1 syncs on every commit)")
		crashAt     = flag.Int64("crash-at", 0, "with -wal: crash the device after this many physical page writes, then recover (0 = no crash)")
		doRecover   = flag.Bool("recover", false, "with -wal: run recovery and print its ledger even without a crash")
		ckptEvery   = flag.Int("checkpoint-every", 0, "with -wal: take a truncating fuzzy checkpoint after every N inserts (0 = never)")
		exportSnap  = flag.String("export-snapshot", "", "with -wal: write a snapshot of the final state to this file")
		seedFrom    = flag.String("seed-from", "", "with -wal: seed the database from a snapshot file instead of loading the workload")
	)
	flag.Parse()

	if *useWAL {
		if err := runWAL(os.Stdout, walOptions{
			k: *k, height: *height, op: *opSpec, strategy: *strategy,
			buffer: *buffer, seed: *seed, faultSeed: *faultSeed, group: *walGroup,
			crashAt: *crashAt, doRecover: *doRecover,
			ckptEvery: *ckptEvery, exportPath: *exportSnap, seedPath: *seedFrom,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "sjoin:", err)
			os.Exit(1)
		}
		return
	}
	if *crashAt != 0 || *doRecover {
		fmt.Fprintln(os.Stderr, "sjoin: -crash-at and -recover require -wal")
		os.Exit(1)
	}
	if *ckptEvery != 0 || *exportSnap != "" || *seedFrom != "" {
		fmt.Fprintln(os.Stderr, "sjoin: -checkpoint-every, -export-snapshot, and -seed-from require -wal")
		os.Exit(1)
	}
	o := options{
		mode:        *mode,
		k:           *k,
		height:      *height,
		op:          *opSpec,
		strategy:    *strategy,
		layout:      *layout,
		buffer:      *buffer,
		seed:        *seed,
		timeout:     *timeout,
		faultSeed:   *faultSeed,
		faultRate:   *faultRate,
		explain:     *explain,
		metricsAddr: *metricsAddr,
		serveFor:    *serveFor,
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "sjoin:", err)
		os.Exit(1)
	}
}

// parseOp turns the -op flag into an operator.
func parseOp(spec string) (pred.Operator, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "overlaps":
		return pred.Overlaps{}, nil
	case "within":
		if len(parts) != 2 {
			return nil, fmt.Errorf("within needs a distance: within:50")
		}
		d, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		return pred.WithinDistance{D: d}, nil
	case "nw":
		return pred.NorthwestOf{}, nil
	case "includes":
		return pred.Includes{}, nil
	case "containedin":
		return pred.ContainedIn{}, nil
	case "reachable":
		if len(parts) != 3 {
			return nil, fmt.Errorf("reachable needs minutes and speed: reachable:10:1")
		}
		min, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		speed, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, err
		}
		return pred.ReachableWithin{Minutes: min, Speed: speed}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", spec)
	}
}

// workload is one stored relation plus its generalization tree.
type workload struct {
	table join.Table
	tree  core.Tree
}

// buildWorkload loads a model tree's tuples into a relation with the chosen
// layout.
func buildWorkload(pool *storage.BufferPool, seed int64, k, height int,
	placement relation.Placement, name string) (workload, error) {

	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	sch, err := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	if err != nil {
		return workload{}, err
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{int64(i), rects[i]}
	}
	rel, err := relation.BulkLoad(pool, name, sch, tuples, placement, 0.75, seed)
	if err != nil {
		return workload{}, err
	}
	table, err := join.NewTable(rel, 1, pool)
	if err != nil {
		return workload{}, err
	}
	return workload{table: table, tree: tree}, nil
}

// options is run's full knob surface (the non-WAL flags).
type options struct {
	mode        string
	k, height   int
	op          string
	strategy    string
	layout      string
	buffer      int
	seed        int64
	timeout     time.Duration
	faultSeed   int64
	faultRate   float64
	explain     bool
	metricsAddr string
	serveFor    time.Duration
}

func run(out io.Writer, o options) (err error) {
	op, err := parseOp(o.op)
	if err != nil {
		return err
	}
	placement := relation.PlaceSequential
	switch o.layout {
	case "clustered":
	case "shuffled":
		placement = relation.PlaceShuffled
	default:
		return fmt.Errorf("unknown layout %q", o.layout)
	}
	if o.faultRate < 0 || o.faultRate >= 1 {
		return fmt.Errorf("fault rate %g out of [0, 1)", o.faultRate)
	}
	var device storage.Device = storage.NewDisk(2000)
	if o.faultRate > 0 {
		device = fault.Wrap(device, fault.Options{
			Seed:               o.faultSeed,
			TransientReadRate:  o.faultRate,
			TransientWriteRate: o.faultRate / 2,
		})
	}
	pool, err := storage.NewBufferPool(device, o.buffer)
	if err != nil {
		return err
	}
	if o.faultRate > 0 {
		// A budget that outlasts the configured rate with high probability;
		// zero base delay keeps the demo fast.
		pool.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 10, Seed: o.faultSeed})
	}
	if o.metricsAddr != "" {
		reg := obs.NewRegistry()
		registerPoolMetrics(reg, pool)
		closeMetrics, err := serveMetrics(out, o.metricsAddr, reg)
		if err != nil {
			return err
		}
		defer closeMetrics()
	}
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	var trace *obs.Trace
	if o.explain {
		ctx, trace = obs.WithTrace(ctx)
	}
	r, err := buildWorkload(pool, o.seed, o.k, o.height, placement, "R")
	if err != nil {
		return err
	}
	s, err := buildWorkload(pool, o.seed+1, o.k, o.height, placement, "S")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: two %d-ary trees of height %d (%d tuples each), %s layout, M=%d pages, op=%s\n",
		o.k, o.height, r.table.Rel.Len(), o.layout, o.buffer, op.Name())

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	defer func() {
		// The table is the program's output: failing to render it is fatal,
		// not a silently dropped error.
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}()
	fmt.Fprintf(w, "strategy\tresults\tfilter evals\texact evals\tpage reads\tindex reads\tcost\t\n")

	// treeResults feeds the explain section's selectivity estimate; -1
	// records that the tree strategy did not run.
	treeResults := -1
	report := func(name string, results int, st join.Stats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.4g\t\n",
			name, results, st.FilterEvals, st.ExactEvals, st.PageReads, st.IndexReads,
			st.Cost(1, 1000))
	}
	cold := func() error {
		if err := pool.DropAll(); err != nil {
			return err
		}
		pool.ResetStats()
		return nil
	}
	epilogue := func() error {
		if err := finish(out, w, pool); err != nil {
			return err
		}
		if o.explain {
			if err := printExplain(out, trace, o, pool.Disk().PageSize(),
				r.table.Rel.NumPages(), r.table.Rel.Len(), treeResults); err != nil {
				return err
			}
		}
		if o.metricsAddr != "" && o.serveFor > 0 {
			time.Sleep(o.serveFor)
		}
		return nil
	}

	want := func(name string) bool { return o.strategy == "all" || o.strategy == name }
	if !want("tree") && !want("scan") && !want("index") {
		return fmt.Errorf("unknown strategy %q", o.strategy)
	}

	if o.mode == "select" {
		sel := geom.NewRect(100, 100, 400, 420)
		if want("scan") {
			if err := cold(); err != nil {
				return err
			}
			ids, st, err := join.ExhaustiveSelectCtx(ctx, r.table, sel, op)
			if err != nil {
				return err
			}
			report("scan", len(ids), st)
		}
		if want("tree") {
			if err := cold(); err != nil {
				return err
			}
			ids, st, err := join.TreeSelectCtx(ctx, r.tree, r.table, sel, op, core.BreadthFirst)
			if err != nil {
				return err
			}
			treeResults = len(ids)
			report("tree", len(ids), st)
		}
		if want("index") {
			fmt.Fprintln(out, "note: join indices cannot answer ad-hoc selections (skipped)")
		}
		return epilogue()
	}
	if o.mode != "join" {
		return fmt.Errorf("unknown mode %q", o.mode)
	}

	if want("scan") {
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.NestedLoopCtx(ctx, r.table, s.table, op, 1)
		if err != nil {
			return err
		}
		report("scan", len(pairs), st)
	}
	if want("tree") {
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.TreeJoinCtx(ctx, r.tree, r.table, s.tree, s.table, op, 1)
		if err != nil {
			return err
		}
		treeResults = len(pairs)
		report("tree", len(pairs), st)
	}
	if want("index") {
		ix, buildStats, err := join.BuildIndex(r.table, s.table, op, 100)
		if err != nil {
			return err
		}
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.IndexJoinCtx(ctx, ix, r.table, s.table, 1)
		if err != nil {
			return err
		}
		report("index", len(pairs), st)
		fmt.Fprintf(out, "note: index build cost %.4g (%d evals) amortized over queries\n",
			buildStats.Cost(1, 1000), buildStats.ExactEvals)
	}
	return epilogue()
}

// printExplain renders the EXPLAIN ANALYZE section: the recorded span tree,
// then — when the tree strategy ran — a per-level table placing the
// measured descent (qualifying entries, predicate counts, physical reads)
// beside the cost model's per-level I/O terms, and the reads-sum identity
// the tracer guarantees (level reads telescope to the strategy's total).
func printExplain(out io.Writer, trace *obs.Trace, o options,
	pageSize, relPages, nTuples, treeResults int) error {

	fmt.Fprintln(out)
	fmt.Fprintln(out, "explain analyze:")
	if err := trace.WriteTree(out); err != nil {
		return err
	}
	levels := trace.SpansNamed("level")
	if len(levels) == 0 || treeResults < 0 {
		return nil
	}
	sort.Slice(levels, func(i, j int) bool {
		a, _ := levels[i].IntAttr("level")
		b, _ := levels[j].IntAttr("level")
		return a < b
	})

	// Configure the §4 model to this workload: the real fanout, height, and
	// buffer size, a tuple size that reproduces the relation's actual page
	// count, and the measured result fraction as the selectivity estimate.
	N := float64(nTuples)
	prm := costmodel.PaperParams()
	prm.Nlevels = o.height
	prm.K = o.k
	prm.H = o.height
	prm.T = N
	prm.S = float64(pageSize)
	prm.V = prm.S * prm.L * float64(relPages) / N
	prm.M = math.Max(float64(o.buffer), 12)
	p := float64(treeResults) / N
	if o.mode == "join" {
		p /= N
	}
	p = math.Min(math.Max(p, 1e-12), 1)
	model, err := costmodel.NewModel(prm, costmodel.Uniform, p)
	if err != nil {
		fmt.Fprintf(out, "cost model unavailable for this workload: %v\n", err)
		return nil
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	measured := func(sp obs.Span, qualKey string) (lv, qual, fe, ee, rd int64) {
		lv, _ = sp.IntAttr("level")
		qual, _ = sp.IntAttr(qualKey)
		fe, _ = sp.IntAttr("filter_evals")
		ee, _ = sp.IntAttr("exact_evals")
		rd, _ = sp.IntAttr("reads")
		return
	}
	if o.mode == "select" {
		terms := model.SelectLevelTerms(prm.H)
		fmt.Fprintf(w, "level\tqualnodes\tfilter\texact\treads\tmodel nodes\tmodel IOa\tmodel IOb\t\n")
		for i, sp := range levels {
			lv, qual, fe, ee, rd := measured(sp, "qualnodes")
			nodes, ioa, iob := "-", "-", "-"
			if i < len(terms) {
				nodes = fmt.Sprintf("%.1f", terms[i].Nodes)
				ioa = fmt.Sprintf("%.1f", terms[i].IOa)
				iob = fmt.Sprintf("%.1f", terms[i].IOb)
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t\n", lv, qual, fe, ee, rd, nodes, ioa, iob)
		}
	} else {
		terms, passes := model.JoinLevelTerms()
		fmt.Fprintf(w, "level\tqualpairs\tfilter\texact\treads\tmodel IOa\tmodel IOb\t\n")
		for i, sp := range levels {
			lv, qual, fe, ee, rd := measured(sp, "qualpairs")
			ioa, iob := "-", "-"
			if i < len(terms) {
				ioa = fmt.Sprintf("%.1f", passes*terms[i].ScanA+terms[i].LoadA)
				iob = fmt.Sprintf("%.1f", passes*terms[i].ScanB+terms[i].LoadB)
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\t%s\t\n", lv, qual, fe, ee, rd, ioa, iob)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	var sum int64
	for _, sp := range levels {
		rd, _ := sp.IntAttr("reads")
		sum += rd
	}
	execName := "treejoin"
	if o.mode == "select" {
		execName = "treeselect"
	}
	var total int64
	if ex := trace.SpansNamed(execName); len(ex) == 1 {
		total, _ = ex[0].IntAttr("page_reads")
	}
	relop := "=="
	if sum != total {
		relop = "!="
	}
	fmt.Fprintf(out, "trace: level reads sum %d %s tree strategy page reads %d\n", sum, relop, total)
	return nil
}

// registerPoolMetrics exposes the counters of a raw benchmark pool (no
// Database in front) as scrape-time samplers. Note cold-start resets
// between strategies make these counters non-monotone within one run.
func registerPoolMetrics(reg *obs.Registry, pool *storage.BufferPool) {
	count := func(name, help string, fn func() int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	count("spatialjoin_pool_logical_reads_total", "Page fetches served by the buffer pool.",
		//sjlint:ignore statsreset scrape-time sampler, not a measurement snapshot
		func() int64 { return pool.Stats().LogicalReads })
	count("spatialjoin_pool_misses_total", "Pool fetches that went to the disk (physical reads).",
		//sjlint:ignore statsreset scrape-time sampler, not a measurement snapshot
		func() int64 { return pool.Stats().Misses })
	count("spatialjoin_pool_evictions_total", "Frames evicted by the pool's LRU policy.",
		//sjlint:ignore statsreset scrape-time sampler, not a measurement snapshot
		func() int64 { return pool.Stats().Evictions })
	count("spatialjoin_disk_reads_total", "Physical page reads at the device.",
		//sjlint:ignore statsreset scrape-time sampler, not a measurement snapshot
		func() int64 { return pool.Disk().Stats().Reads })
	count("spatialjoin_disk_writes_total", "Physical page writes at the device.",
		//sjlint:ignore statsreset scrape-time sampler, not a measurement snapshot
		func() int64 { return pool.Disk().Stats().Writes })
}

// serveMetrics starts the observability endpoint (/metrics, /debug/vars,
// pprof) on addr — port 0 picks a free port — printing the bound address.
// The returned function stops the server.
func serveMetrics(out io.Writer, addr string, reg *obs.Registry) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "metrics: serving http://%s/metrics\n", ln.Addr())
	srv := &http.Server{Handler: obs.NewMux(reg)}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "sjoin: metrics server:", serr)
		}
	}()
	return func() {
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "sjoin: closing metrics server:", cerr)
		}
	}, nil
}

// finish renders the table, forces pending write-backs to disk — a failed
// flush is a fatal, reportable loss, not a droppable error — and prints the
// physical I/O ledger for the last (post-reset) strategy run, including the
// retry and fault counters when a fault schedule was injected.
func finish(out io.Writer, w *tabwriter.Writer, pool *storage.BufferPool) error {
	if err := w.Flush(); err != nil {
		return err
	}
	if err := pool.Flush(); err != nil {
		return fmt.Errorf("flushing buffer pool: %w", err)
	}
	ps, ds := pool.Stats(), pool.Disk().Stats()
	fmt.Fprintf(out, "io: %d logical reads, %d misses, %d evictions; retries %d read / %d write\n",
		ps.LogicalReads, ps.Misses, ps.Evictions, ps.ReadRetries, ps.WriteRetries)
	if ds.ReadFaults > 0 || ds.WriteFaults > 0 {
		fmt.Fprintf(out, "device: %d reads (+%d faulted attempts), %d writes (+%d faulted attempts)\n",
			ds.Reads, ds.ReadFaults, ds.Writes, ds.WriteFaults)
	}
	return nil
}
