// Command sjoin runs measured spatial joins and selections on the
// simulated disk: it generates a synthetic workload, executes one or all of
// the paper's strategies, and prints result counts, predicate evaluations,
// page I/O and the weighted cost (C_Θ = 1, C_IO = 1000 as in Table 3).
//
// Usage:
//
//	sjoin -n 500 -op overlaps -strategy all
//	sjoin -n 1000 -op within:50 -strategy tree -layout shuffled
//	sjoin -mode select -n 2000 -op reachable:10:1
//
// The workload is a pair of model generalization trees (clustered or
// shuffled page layout) over uniformly random nested rectangles in a
// 1000×1000 world.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/join"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/storage"
)

func main() {
	var (
		mode      = flag.String("mode", "join", "join or select")
		k         = flag.Int("k", 4, "generalization tree fanout")
		height    = flag.Int("height", 4, "generalization tree height")
		opSpec    = flag.String("op", "overlaps", "operator: overlaps | within:D | nw | includes | containedin | reachable:MIN:SPEED")
		strategy  = flag.String("strategy", "all", "tree | scan | index | all")
		layout    = flag.String("layout", "clustered", "clustered | shuffled")
		buffer    = flag.Int("buffer", 64, "buffer pool pages (M)")
		seed      = flag.Int64("seed", 1, "workload seed")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the injected fault schedule")
		faultRate = flag.Float64("fault-rate", 0, "transient fault probability per physical page transfer (0 = healthy disk)")
		useWAL    = flag.Bool("wal", false, "run the workload through the Database API with a write-ahead log (every insert a transaction)")
		walGroup  = flag.Int("wal-group", 1, "WAL group-commit size (<=1 syncs on every commit)")
		crashAt   = flag.Int64("crash-at", 0, "with -wal: crash the device after this many physical page writes, then recover (0 = no crash)")
		doRecover = flag.Bool("recover", false, "with -wal: run recovery and print its ledger even without a crash")
	)
	flag.Parse()

	if *useWAL {
		if err := runWAL(os.Stdout, *k, *height, *opSpec, *strategy, *buffer, *seed,
			*faultSeed, *walGroup, *crashAt, *doRecover); err != nil {
			fmt.Fprintln(os.Stderr, "sjoin:", err)
			os.Exit(1)
		}
		return
	}
	if *crashAt != 0 || *doRecover {
		fmt.Fprintln(os.Stderr, "sjoin: -crash-at and -recover require -wal")
		os.Exit(1)
	}
	if err := run(os.Stdout, *mode, *k, *height, *opSpec, *strategy, *layout, *buffer, *seed,
		*timeout, *faultSeed, *faultRate); err != nil {
		fmt.Fprintln(os.Stderr, "sjoin:", err)
		os.Exit(1)
	}
}

// parseOp turns the -op flag into an operator.
func parseOp(spec string) (pred.Operator, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "overlaps":
		return pred.Overlaps{}, nil
	case "within":
		if len(parts) != 2 {
			return nil, fmt.Errorf("within needs a distance: within:50")
		}
		d, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		return pred.WithinDistance{D: d}, nil
	case "nw":
		return pred.NorthwestOf{}, nil
	case "includes":
		return pred.Includes{}, nil
	case "containedin":
		return pred.ContainedIn{}, nil
	case "reachable":
		if len(parts) != 3 {
			return nil, fmt.Errorf("reachable needs minutes and speed: reachable:10:1")
		}
		min, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		speed, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, err
		}
		return pred.ReachableWithin{Minutes: min, Speed: speed}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", spec)
	}
}

// workload is one stored relation plus its generalization tree.
type workload struct {
	table join.Table
	tree  core.Tree
}

// buildWorkload loads a model tree's tuples into a relation with the chosen
// layout.
func buildWorkload(pool *storage.BufferPool, seed int64, k, height int,
	placement relation.Placement, name string) (workload, error) {

	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	sch, err := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	if err != nil {
		return workload{}, err
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{int64(i), rects[i]}
	}
	rel, err := relation.BulkLoad(pool, name, sch, tuples, placement, 0.75, seed)
	if err != nil {
		return workload{}, err
	}
	table, err := join.NewTable(rel, 1, pool)
	if err != nil {
		return workload{}, err
	}
	return workload{table: table, tree: tree}, nil
}

func run(out io.Writer, mode string, k, height int, opSpec, strategy, layout string, buffer int, seed int64,
	timeout time.Duration, faultSeed int64, faultRate float64) (err error) {

	op, err := parseOp(opSpec)
	if err != nil {
		return err
	}
	placement := relation.PlaceSequential
	switch layout {
	case "clustered":
	case "shuffled":
		placement = relation.PlaceShuffled
	default:
		return fmt.Errorf("unknown layout %q", layout)
	}
	if faultRate < 0 || faultRate >= 1 {
		return fmt.Errorf("fault rate %g out of [0, 1)", faultRate)
	}
	var device storage.Device = storage.NewDisk(2000)
	if faultRate > 0 {
		device = fault.Wrap(device, fault.Options{
			Seed:               faultSeed,
			TransientReadRate:  faultRate,
			TransientWriteRate: faultRate / 2,
		})
	}
	pool, err := storage.NewBufferPool(device, buffer)
	if err != nil {
		return err
	}
	if faultRate > 0 {
		// A budget that outlasts the configured rate with high probability;
		// zero base delay keeps the demo fast.
		pool.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 10, Seed: faultSeed})
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	r, err := buildWorkload(pool, seed, k, height, placement, "R")
	if err != nil {
		return err
	}
	s, err := buildWorkload(pool, seed+1, k, height, placement, "S")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "workload: two %d-ary trees of height %d (%d tuples each), %s layout, M=%d pages, op=%s\n",
		k, height, r.table.Rel.Len(), layout, buffer, op.Name())

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	defer func() {
		// The table is the program's output: failing to render it is fatal,
		// not a silently dropped error.
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}()
	fmt.Fprintf(w, "strategy\tresults\tfilter evals\texact evals\tpage reads\tindex reads\tcost\t\n")

	report := func(name string, results int, st join.Stats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.4g\t\n",
			name, results, st.FilterEvals, st.ExactEvals, st.PageReads, st.IndexReads,
			st.Cost(1, 1000))
	}
	cold := func() error {
		if err := pool.DropAll(); err != nil {
			return err
		}
		pool.ResetStats()
		return nil
	}

	want := func(name string) bool { return strategy == "all" || strategy == name }
	if !want("tree") && !want("scan") && !want("index") {
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	if mode == "select" {
		sel := geom.NewRect(100, 100, 400, 420)
		if want("scan") {
			if err := cold(); err != nil {
				return err
			}
			ids, st, err := join.ExhaustiveSelectCtx(ctx, r.table, sel, op)
			if err != nil {
				return err
			}
			report("scan", len(ids), st)
		}
		if want("tree") {
			if err := cold(); err != nil {
				return err
			}
			ids, st, err := join.TreeSelectCtx(ctx, r.tree, r.table, sel, op, core.BreadthFirst)
			if err != nil {
				return err
			}
			report("tree", len(ids), st)
		}
		if want("index") {
			fmt.Fprintln(out, "note: join indices cannot answer ad-hoc selections (skipped)")
		}
		return finish(out, w, pool)
	}
	if mode != "join" {
		return fmt.Errorf("unknown mode %q", mode)
	}

	if want("scan") {
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.NestedLoopCtx(ctx, r.table, s.table, op, 1)
		if err != nil {
			return err
		}
		report("scan", len(pairs), st)
	}
	if want("tree") {
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.TreeJoinCtx(ctx, r.tree, r.table, s.tree, s.table, op, 1)
		if err != nil {
			return err
		}
		report("tree", len(pairs), st)
	}
	if want("index") {
		ix, buildStats, err := join.BuildIndex(r.table, s.table, op, 100)
		if err != nil {
			return err
		}
		if err := cold(); err != nil {
			return err
		}
		pairs, st, err := join.IndexJoinCtx(ctx, ix, r.table, s.table, 1)
		if err != nil {
			return err
		}
		report("index", len(pairs), st)
		fmt.Fprintf(out, "note: index build cost %.4g (%d evals) amortized over queries\n",
			buildStats.Cost(1, 1000), buildStats.ExactEvals)
	}
	return finish(out, w, pool)
}

// finish renders the table, forces pending write-backs to disk — a failed
// flush is a fatal, reportable loss, not a droppable error — and prints the
// physical I/O ledger for the last (post-reset) strategy run, including the
// retry and fault counters when a fault schedule was injected.
func finish(out io.Writer, w *tabwriter.Writer, pool *storage.BufferPool) error {
	if err := w.Flush(); err != nil {
		return err
	}
	if err := pool.Flush(); err != nil {
		return fmt.Errorf("flushing buffer pool: %w", err)
	}
	ps, ds := pool.Stats(), pool.Disk().Stats()
	fmt.Fprintf(out, "io: %d logical reads, %d misses, %d evictions; retries %d read / %d write\n",
		ps.LogicalReads, ps.Misses, ps.Evictions, ps.ReadRetries, ps.WriteRetries)
	if ds.ReadFaults > 0 || ds.WriteFaults > 0 {
		fmt.Fprintf(out, "device: %d reads (+%d faulted attempts), %d writes (+%d faulted attempts)\n",
			ds.Reads, ds.ReadFaults, ds.Writes, ds.WriteFaults)
	}
	return nil
}
