package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
)

func TestParseOp(t *testing.T) {
	cases := map[string]string{
		"overlaps":       "overlaps",
		"within:50":      "within_distance(50)",
		"nw":             "northwest_of",
		"includes":       "includes",
		"containedin":    "contained_in",
		"reachable:10:2": "reachable_within(10min@2)",
	}
	for spec, want := range cases {
		op, err := parseOp(spec)
		if err != nil {
			t.Fatalf("parseOp(%s): %v", spec, err)
		}
		if op.Name() != want {
			t.Fatalf("parseOp(%s) = %s, want %s", spec, op.Name(), want)
		}
	}
	for _, bad := range []string{"", "warp", "within", "within:x", "reachable:1", "reachable:a:b"} {
		if _, err := parseOp(bad); err == nil {
			t.Fatalf("parseOp(%q) must fail", bad)
		}
	}
	// Sanity: the parsed operator is usable.
	op, _ := parseOp("within:5")
	if _, ok := op.(pred.WithinDistance); !ok {
		t.Fatal("wrong operator type")
	}
}

// testOptions is the shared small workload of the run tests.
func testOptions(mode, op, strategy, layout string) options {
	return options{
		mode: mode, k: 3, height: 2, op: op, strategy: strategy, layout: layout,
		buffer: 32, seed: 1, faultSeed: 1,
	}
}

func runSjoin(t *testing.T, mode, op, strategy, layout string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, testOptions(mode, op, strategy, layout)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunWithFaultsRecoversAndReportsRetries(t *testing.T) {
	var sb strings.Builder
	o := testOptions("join", "overlaps", "tree", "clustered")
	o.faultSeed, o.faultRate = 7, 0.2
	if err := run(&sb, o); err != nil {
		t.Fatalf("join under transient faults must recover: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"retries", "faulted attempts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faulted run output missing %q:\n%s", want, out)
		}
	}
	// The same workload on a healthy disk returns the same result row.
	healthy := runSjoin(t, "join", "overlaps", "tree", "clustered")
	resultCount := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[0] == "tree" {
				return f[1]
			}
		}
		return ""
	}
	if got, want := resultCount(out), resultCount(healthy); got == "" || got != want {
		t.Fatalf("faulted run found %s results, healthy run %s", got, want)
	}
}

func TestRunJoinAllStrategies(t *testing.T) {
	out := runSjoin(t, "join", "overlaps", "all", "clustered")
	for _, want := range []string{"workload:", "scan", "tree", "index", "cost", "amortized"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// All three strategies must report the same result count: extract the
	// first column numbers.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("strategies disagree on result counts: %v\n%s", counts, out)
	}
}

func TestRunSelectSkipsIndex(t *testing.T) {
	out := runSjoin(t, "select", "within:120", "all", "shuffled")
	if !strings.Contains(out, "cannot answer ad-hoc selections") {
		t.Fatalf("select must note the index limitation:\n%s", out)
	}
	if !strings.Contains(out, "tree") || !strings.Contains(out, "scan") {
		t.Fatal("select must run scan and tree")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, testOptions("join", "bogus", "all", "clustered")); err == nil {
		t.Error("bad operator must fail")
	}
	if err := run(&sb, testOptions("join", "overlaps", "warp", "clustered")); err == nil {
		t.Error("bad strategy must fail")
	}
	if err := run(&sb, testOptions("join", "overlaps", "all", "diagonal")); err == nil {
		t.Error("bad layout must fail")
	}
	if err := run(&sb, testOptions("neither", "overlaps", "all", "clustered")); err == nil {
		t.Error("bad mode must fail")
	}
	zeroBuf := testOptions("join", "overlaps", "all", "clustered")
	zeroBuf.buffer = 0
	if err := run(&sb, zeroBuf); err == nil {
		t.Error("zero buffer must fail")
	}
	badRate := testOptions("join", "overlaps", "all", "clustered")
	badRate.faultRate = 1.5
	if err := run(&sb, badRate); err == nil {
		t.Error("out-of-range fault rate must fail")
	}
}

// explainLevelReads parses the "trace: level reads sum A == ... reads B"
// summary line into its two totals.
func explainLevelReads(t *testing.T, out string) (sum, total string, equal bool) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "trace: level reads sum") {
			continue
		}
		f := strings.Fields(line)
		// trace: level reads sum <A> <==|!=> tree strategy page reads <B>
		if len(f) != 11 {
			t.Fatalf("malformed trace summary line: %q", line)
		}
		return f[4], f[10], f[5] == "=="
	}
	t.Fatalf("output has no trace summary line:\n%s", out)
	return "", "", false
}

func TestRunExplainJoin(t *testing.T) {
	var sb strings.Builder
	o := testOptions("join", "overlaps", "tree", "clustered")
	o.explain = true
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"explain analyze:", "treejoin", "qualpairs", "model IOa"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	// The acceptance identity: the per-level reads of the printed trace sum
	// exactly to the strategy's page-read counter.
	sum, total, equal := explainLevelReads(t, out)
	if !equal {
		t.Fatalf("level reads sum %s != strategy page reads %s:\n%s", sum, total, out)
	}
	if sum == "0" {
		t.Fatalf("traced join read no pages; workload too small:\n%s", out)
	}
}

func TestRunExplainSelect(t *testing.T) {
	var sb strings.Builder
	o := testOptions("select", "overlaps", "tree", "shuffled")
	o.explain = true
	if err := run(&sb, o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"explain analyze:", "treeselect", "qualnodes", "model nodes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if _, _, equal := explainLevelReads(t, out); !equal {
		t.Fatalf("select level reads do not telescope:\n%s", out)
	}
}

func TestServeMetrics(t *testing.T) {
	var sb strings.Builder
	reg := obs.NewRegistry()
	reg.Counter("sjoin_test_total", "Test counter.").Add(3)
	stop, err := serveMetrics(&sb, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	addr := strings.TrimSpace(strings.TrimPrefix(sb.String(), "metrics: serving "))
	resp, err := http.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "sjoin_test_total 3") {
		t.Fatalf("metrics endpoint returned %d:\n%s", resp.StatusCode, body)
	}
}
