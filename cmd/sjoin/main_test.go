package main

import (
	"strings"
	"testing"

	"spatialjoin/internal/pred"
)

func TestParseOp(t *testing.T) {
	cases := map[string]string{
		"overlaps":       "overlaps",
		"within:50":      "within_distance(50)",
		"nw":             "northwest_of",
		"includes":       "includes",
		"containedin":    "contained_in",
		"reachable:10:2": "reachable_within(10min@2)",
	}
	for spec, want := range cases {
		op, err := parseOp(spec)
		if err != nil {
			t.Fatalf("parseOp(%s): %v", spec, err)
		}
		if op.Name() != want {
			t.Fatalf("parseOp(%s) = %s, want %s", spec, op.Name(), want)
		}
	}
	for _, bad := range []string{"", "warp", "within", "within:x", "reachable:1", "reachable:a:b"} {
		if _, err := parseOp(bad); err == nil {
			t.Fatalf("parseOp(%q) must fail", bad)
		}
	}
	// Sanity: the parsed operator is usable.
	op, _ := parseOp("within:5")
	if _, ok := op.(pred.WithinDistance); !ok {
		t.Fatal("wrong operator type")
	}
}

func runSjoin(t *testing.T, mode, op, strategy, layout string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, mode, 3, 2, op, strategy, layout, 32, 1, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunWithFaultsRecoversAndReportsRetries(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "join", 3, 2, "overlaps", "tree", "clustered", 32, 1, 0, 7, 0.2); err != nil {
		t.Fatalf("join under transient faults must recover: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"retries", "faulted attempts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faulted run output missing %q:\n%s", want, out)
		}
	}
	// The same workload on a healthy disk returns the same result row.
	healthy := runSjoin(t, "join", "overlaps", "tree", "clustered")
	resultCount := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			f := strings.Fields(line)
			if len(f) >= 2 && f[0] == "tree" {
				return f[1]
			}
		}
		return ""
	}
	if got, want := resultCount(out), resultCount(healthy); got == "" || got != want {
		t.Fatalf("faulted run found %s results, healthy run %s", got, want)
	}
}

func TestRunJoinAllStrategies(t *testing.T) {
	out := runSjoin(t, "join", "overlaps", "all", "clustered")
	for _, want := range []string{"workload:", "scan", "tree", "index", "cost", "amortized"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// All three strategies must report the same result count: extract the
	// first column numbers.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("strategies disagree on result counts: %v\n%s", counts, out)
	}
}

func TestRunSelectSkipsIndex(t *testing.T) {
	out := runSjoin(t, "select", "within:120", "all", "shuffled")
	if !strings.Contains(out, "cannot answer ad-hoc selections") {
		t.Fatalf("select must note the index limitation:\n%s", out)
	}
	if !strings.Contains(out, "tree") || !strings.Contains(out, "scan") {
		t.Fatal("select must run scan and tree")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "join", 3, 2, "bogus", "all", "clustered", 32, 1, 0, 1, 0); err == nil {
		t.Error("bad operator must fail")
	}
	if err := run(&sb, "join", 3, 2, "overlaps", "warp", "clustered", 32, 1, 0, 1, 0); err == nil {
		t.Error("bad strategy must fail")
	}
	if err := run(&sb, "join", 3, 2, "overlaps", "all", "diagonal", 32, 1, 0, 1, 0); err == nil {
		t.Error("bad layout must fail")
	}
	if err := run(&sb, "neither", 3, 2, "overlaps", "all", "clustered", 32, 1, 0, 1, 0); err == nil {
		t.Error("bad mode must fail")
	}
	if err := run(&sb, "join", 3, 2, "overlaps", "all", "clustered", 0, 1, 0, 1, 0); err == nil {
		t.Error("zero buffer must fail")
	}
	if err := run(&sb, "join", 3, 2, "overlaps", "all", "clustered", 32, 1, 0, 1, 1.5); err == nil {
		t.Error("out-of-range fault rate must fail")
	}
}
