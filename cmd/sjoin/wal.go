package main

// The -wal path runs the workload through the Database API with a
// write-ahead log: every insert is a crash-consistent transaction, and the
// -crash-at / -recover flags drive the injected-crash → reboot → recover
// cycle from the command line, printing the recovery ledger the harness
// tests assert on.

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"text/tabwriter"

	spatialjoin "spatialjoin"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
)

// walRects generates the workload rectangles: the tuple-level MBRs of one
// model generalization tree.
func walRects(seed int64, k, height int) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	return rects
}

// walOptions bundles the -wal path's flag values.
type walOptions struct {
	k, height    int
	op, strategy string
	buffer       int
	seed         int64
	faultSeed    int64
	group        int
	crashAt      int64
	doRecover    bool
	// ckptEvery takes a truncating fuzzy checkpoint after every N inserts
	// (0 = never).
	ckptEvery int
	// exportPath writes a snapshot of the final state to this file.
	exportPath string
	// seedPath seeds the database from a snapshot file instead of running
	// the generated workload.
	seedPath string
}

// runWAL executes the join workload on a WAL-enabled Database — or seeds
// one from a snapshot — optionally checkpointing during the load, crashing
// it mid-load (-crash-at) and recovering (-recover or after a crash), then
// reports per-strategy results plus the WAL, checkpoint, and recovery
// ledgers, and optionally exports a snapshot of the final state.
func runWAL(out io.Writer, o walOptions) (err error) {
	op, err := parseOp(o.op)
	if err != nil {
		return err
	}
	want := func(name string) bool { return o.strategy == "all" || o.strategy == name }
	if !want("tree") && !want("scan") && !want("index") {
		return fmt.Errorf("unknown strategy %q", o.strategy)
	}

	cfg := spatialjoin.DefaultConfig()
	cfg.BufferPages = o.buffer
	cfg.Workers = 1
	cfg.WAL = true
	cfg.WALGroupCommit = o.group
	cfg.Fault = &fault.Options{Seed: o.faultSeed}

	var db *spatialjoin.Database
	if o.seedPath != "" {
		f, err := os.Open(o.seedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sdb, info, err := spatialjoin.SeedFromSnapshot(cfg, f)
		if err != nil {
			return fmt.Errorf("seeding from %s: %w", o.seedPath, err)
		}
		fmt.Fprintf(out, "seeded: %s (%d pages, checkpoint LSN %d, log durable to %d)\n",
			o.seedPath, info.Pages, info.CheckpointLSN, info.WALDurable)
		db = sdb
	} else {
		db, err = spatialjoin.Open(cfg)
		if err != nil {
			return err
		}
	}
	rectsR := walRects(o.seed, o.k, o.height)
	rectsS := walRects(o.seed+1, o.k, o.height)

	if o.crashAt > 0 {
		db.FaultDisk().SetCrashAfterWrites(o.crashAt)
	}
	inserted, checkpoints := 0, 0
	crashed := false
	if o.seedPath == "" {
		crashed = func() (crashed bool) {
			defer func() {
				if v := recover(); v != nil {
					c, ok := fault.AsCrash(v)
					if !ok {
						panic(v)
					}
					fmt.Fprintf(out, "crash: %v\n", c)
					crashed = true
				}
			}()
			r, err2 := db.CreateCollection("R")
			if err2 != nil {
				err = err2
				return false
			}
			s, err2 := db.CreateCollection("S")
			if err2 != nil {
				err = err2
				return false
			}
			maybeCheckpoint := func() {
				if o.ckptEvery > 0 && inserted%o.ckptEvery == 0 {
					if _, err2 := db.Checkpoint(); err2 != nil {
						err = err2
						return
					}
					checkpoints++
				}
			}
			for i, rc := range rectsR {
				if _, err2 := r.Insert(rc, fmt.Sprintf("r%d", i)); err2 != nil {
					err = err2
					return false
				}
				inserted++
				if maybeCheckpoint(); err != nil {
					return false
				}
			}
			for i, sc := range rectsS {
				if _, err2 := s.Insert(sc, fmt.Sprintf("s%d", i)); err2 != nil {
					err = err2
					return false
				}
				inserted++
				if maybeCheckpoint(); err != nil {
					return false
				}
			}
			return false
		}()
		if err != nil {
			return err
		}
	}
	ws := db.WALStats()
	fmt.Fprintf(out, "workload: two %d-ary trees of height %d (%d+%d tuples), WAL on (group commit %d), M=%d pages, op=%s\n",
		o.k, o.height, len(rectsR), len(rectsS), o.group, o.buffer, op.Name())
	fmt.Fprintf(out, "wal: %d records, %d commits, %d syncs, %d log page writes, %d bytes logged (%d padding)\n",
		ws.Records, ws.Commits, ws.Syncs, ws.PageWrites, ws.BytesLogged, ws.PaddingBytes)
	if checkpoints > 0 {
		tot := db.CheckpointTotals()
		fmt.Fprintf(out, "checkpoints: %d taken, %d pages flushed, %d log pages truncated, redo floor %d\n",
			tot.Checkpoints, tot.PagesFlushed, tot.PagesTruncated, tot.LastFloor)
	}

	if crashed || o.doRecover {
		if fd := db.FaultDisk(); fd.Crashed() {
			fd.Reboot()
		}
		rdb, stats, rerr := spatialjoin.Reopen(cfg, db.Device())
		if rerr != nil {
			return fmt.Errorf("recovering: %w", rerr)
		}
		fmt.Fprintf(out, "recovery: %d records scanned, %d replayed onto %d pages, %d skipped below checkpoint %d, %d txns committed, %d discarded, %d torn tail bytes (%d torn pages), %d index rebuilds skipped\n",
			stats.RecordsScanned, stats.RecordsReplayed, stats.PagesRestored,
			stats.RecordsSkipped, stats.CheckpointLSN,
			stats.TxnsCommitted, stats.TxnsDiscarded, stats.TornTailBytes, stats.TornPages,
			stats.IndexRebuildsSkipped)
		db = rdb
	} else if inserted > 0 {
		if err := db.Flush(); err != nil {
			return err
		}
	}

	r, okR := db.Collection("R")
	s, okS := db.Collection("S")
	if !okR || !okS {
		fmt.Fprintln(out, "collections did not survive the crash (no committed creation); nothing to join")
		return nil
	}
	fmt.Fprintf(out, "collections: |R|=%d |S|=%d\n", r.Len(), s.Len())

	// Build the join index before any export so the snapshot ships it and
	// the seeded replica's IndexStrategy works without a rebuild. A seeded
	// snapshot (or a recovered log) may already carry it.
	if want("index") && !db.HasJoinIndex(r, s, op) {
		if _, _, err := db.BuildJoinIndex(r, s, op); err != nil {
			return err
		}
	}

	if o.exportPath != "" {
		f, err := os.Create(o.exportPath)
		if err != nil {
			return err
		}
		info, err := db.ExportSnapshot(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("exporting snapshot: %w", err)
		}
		fmt.Fprintf(out, "snapshot: wrote %s (%d pages, checkpoint LSN %d)\n",
			o.exportPath, info.Pages, info.CheckpointLSN)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	defer func() {
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}()
	fmt.Fprintf(w, "strategy\tresults\tfilter evals\texact evals\tpage reads\tindex reads\tcost\t\n")
	report := func(name string, results int, st spatialjoin.Stats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.4g\t\n",
			name, results, st.FilterEvals, st.ExactEvals, st.PageReads, st.IndexReads,
			st.Cost(1, 1000))
	}
	if want("scan") {
		ms, st, err := db.Join(r, s, op, spatialjoin.ScanStrategy)
		if err != nil {
			return err
		}
		report("scan", len(ms), st)
	}
	if want("tree") {
		ms, st, err := db.Join(r, s, op, spatialjoin.TreeStrategy)
		if err != nil {
			return err
		}
		report("tree", len(ms), st)
	}
	if want("index") {
		ms, st, err := db.Join(r, s, op, spatialjoin.IndexStrategy)
		if err != nil {
			return err
		}
		report("index", len(ms), st)
	}
	return nil
}
