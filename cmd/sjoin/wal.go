package main

// The -wal path runs the workload through the Database API with a
// write-ahead log: every insert is a crash-consistent transaction, and the
// -crash-at / -recover flags drive the injected-crash → reboot → recover
// cycle from the command line, printing the recovery ledger the harness
// tests assert on.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	spatialjoin "spatialjoin"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
)

// walRects generates the workload rectangles: the tuple-level MBRs of one
// model generalization tree.
func walRects(seed int64, k, height int) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, k, height)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	return rects
}

// runWAL executes the join workload on a WAL-enabled Database, optionally
// crashing it mid-load (-crash-at) and recovering (-recover or after a
// crash), then reports per-strategy results plus the WAL and recovery
// ledgers.
func runWAL(out io.Writer, k, height int, opSpec, strategy string, buffer int, seed int64,
	faultSeed int64, group int, crashAt int64, doRecover bool) (err error) {

	op, err := parseOp(opSpec)
	if err != nil {
		return err
	}
	want := func(name string) bool { return strategy == "all" || strategy == name }
	if !want("tree") && !want("scan") && !want("index") {
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	cfg := spatialjoin.DefaultConfig()
	cfg.BufferPages = buffer
	cfg.Workers = 1
	cfg.WAL = true
	cfg.WALGroupCommit = group
	cfg.Fault = &fault.Options{Seed: faultSeed}

	db, err := spatialjoin.Open(cfg)
	if err != nil {
		return err
	}
	rectsR := walRects(seed, k, height)
	rectsS := walRects(seed+1, k, height)

	if crashAt > 0 {
		db.FaultDisk().SetCrashAfterWrites(crashAt)
	}
	inserted := 0
	crashed := func() (crashed bool) {
		defer func() {
			if v := recover(); v != nil {
				c, ok := fault.AsCrash(v)
				if !ok {
					panic(v)
				}
				fmt.Fprintf(out, "crash: %v\n", c)
				crashed = true
			}
		}()
		r, err2 := db.CreateCollection("R")
		if err2 != nil {
			err = err2
			return false
		}
		s, err2 := db.CreateCollection("S")
		if err2 != nil {
			err = err2
			return false
		}
		for i, rc := range rectsR {
			if _, err2 := r.Insert(rc, fmt.Sprintf("r%d", i)); err2 != nil {
				err = err2
				return false
			}
			inserted++
		}
		for i, sc := range rectsS {
			if _, err2 := s.Insert(sc, fmt.Sprintf("s%d", i)); err2 != nil {
				err = err2
				return false
			}
			inserted++
		}
		return false
	}()
	if err != nil {
		return err
	}
	ws := db.WALStats()
	fmt.Fprintf(out, "workload: two %d-ary trees of height %d (%d+%d tuples), WAL on (group commit %d), M=%d pages, op=%s\n",
		k, height, len(rectsR), len(rectsS), group, buffer, op.Name())
	fmt.Fprintf(out, "wal: %d records, %d commits, %d syncs, %d log page writes, %d bytes logged (%d padding)\n",
		ws.Records, ws.Commits, ws.Syncs, ws.PageWrites, ws.BytesLogged, ws.PaddingBytes)

	if crashed || doRecover {
		if fd := db.FaultDisk(); fd.Crashed() {
			fd.Reboot()
		}
		rdb, stats, rerr := spatialjoin.Reopen(cfg, db.Device())
		if rerr != nil {
			return fmt.Errorf("recovering: %w", rerr)
		}
		fmt.Fprintf(out, "recovery: %d records scanned, %d replayed onto %d pages, %d txns committed, %d discarded, %d torn tail bytes (%d torn pages)\n",
			stats.RecordsScanned, stats.RecordsReplayed, stats.PagesRestored,
			stats.TxnsCommitted, stats.TxnsDiscarded, stats.TornTailBytes, stats.TornPages)
		db = rdb
	} else if inserted > 0 {
		if err := db.Flush(); err != nil {
			return err
		}
	}

	r, okR := db.Collection("R")
	s, okS := db.Collection("S")
	if !okR || !okS {
		fmt.Fprintln(out, "collections did not survive the crash (no committed creation); nothing to join")
		return nil
	}
	fmt.Fprintf(out, "collections: |R|=%d |S|=%d\n", r.Len(), s.Len())

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	defer func() {
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
	}()
	fmt.Fprintf(w, "strategy\tresults\tfilter evals\texact evals\tpage reads\tindex reads\tcost\t\n")
	report := func(name string, results int, st spatialjoin.Stats) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.4g\t\n",
			name, results, st.FilterEvals, st.ExactEvals, st.PageReads, st.IndexReads,
			st.Cost(1, 1000))
	}
	if want("scan") {
		ms, st, err := db.Join(r, s, op, spatialjoin.ScanStrategy)
		if err != nil {
			return err
		}
		report("scan", len(ms), st)
	}
	if want("tree") {
		ms, st, err := db.Join(r, s, op, spatialjoin.TreeStrategy)
		if err != nil {
			return err
		}
		report("tree", len(ms), st)
	}
	if want("index") {
		if _, _, err := db.BuildJoinIndex(r, s, op); err != nil {
			return err
		}
		ms, st, err := db.Join(r, s, op, spatialjoin.IndexStrategy)
		if err != nil {
			return err
		}
		report("index", len(ms), st)
	}
	return nil
}
