package main

import (
	"strings"
	"testing"
)

func runSjoinWAL(t *testing.T, strategy string, group int, crashAt int64, doRecover bool) string {
	t.Helper()
	var sb strings.Builder
	if err := runWAL(&sb, 3, 2, "overlaps", strategy, 32, 1, 1, group, crashAt, doRecover); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunWALCleanRun(t *testing.T) {
	out := runSjoinWAL(t, "all", 1, 0, false)
	for _, want := range []string{"WAL on (group commit 1)", "wal:", "commits", "syncs",
		"collections: |R|=13 |S|=13", "scan", "tree", "index"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WAL run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "recovery:") {
		t.Fatalf("clean run without -recover must not report a recovery ledger:\n%s", out)
	}
	// All strategies agree on the result count.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("strategies disagree on result counts: %v\n%s", counts, out)
	}
}

func TestRunWALRecoverWithoutCrash(t *testing.T) {
	out := runSjoinWAL(t, "scan", 4, 0, true)
	if !strings.Contains(out, "recovery:") {
		t.Fatalf("-recover must print the recovery ledger:\n%s", out)
	}
	for _, want := range []string{"records scanned", "replayed onto", "txns committed",
		"0 discarded", "0 torn tail bytes", "collections: |R|=13 |S|=13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("recovery ledger missing %q:\n%s", want, out)
		}
	}
}

func TestRunWALCrashAndRecover(t *testing.T) {
	out := runSjoinWAL(t, "all", 1, 25, false)
	for _, want := range []string{"crash: fault: injected crash at write 25",
		"recovery:", "records scanned", "torn tail bytes", "discarded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("crashed run output missing %q:\n%s", want, out)
		}
	}
	// The recovered database still answers queries (a committed prefix of
	// the load survives the crash) and all requested strategies agree.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("post-recovery strategies disagree: %v\n%s", counts, out)
	}
}

func TestRunWALCrashVeryEarly(t *testing.T) {
	// Crashing on the first physical write loses even the collection
	// creations; recovery must still succeed and the tool must say so
	// rather than erroring out.
	out := runSjoinWAL(t, "all", 1, 1, false)
	if !strings.Contains(out, "recovery:") {
		t.Fatalf("early crash must still run recovery:\n%s", out)
	}
	if !strings.Contains(out, "nothing to join") && !strings.Contains(out, "collections: |R|=") {
		t.Fatalf("early crash output must report surviving state either way:\n%s", out)
	}
}

func TestRunWALErrors(t *testing.T) {
	var sb strings.Builder
	if err := runWAL(&sb, 3, 2, "bogus", "all", 32, 1, 1, 1, 0, false); err == nil {
		t.Error("bad operator must fail")
	}
	if err := runWAL(&sb, 3, 2, "overlaps", "warp", 32, 1, 1, 1, 0, false); err == nil {
		t.Error("bad strategy must fail")
	}
	if err := runWAL(&sb, 3, 2, "overlaps", "all", 0, 1, 1, 1, 0, false); err == nil {
		t.Error("zero buffer must fail")
	}
}
