package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// sjoinWALOpts is the shared small-workload configuration of these tests.
func sjoinWALOpts(strategy string, group int, crashAt int64, doRecover bool) walOptions {
	return walOptions{
		k: 3, height: 2, op: "overlaps", strategy: strategy,
		buffer: 32, seed: 1, faultSeed: 1, group: group,
		crashAt: crashAt, doRecover: doRecover,
	}
}

func runSjoinWAL(t *testing.T, strategy string, group int, crashAt int64, doRecover bool) string {
	t.Helper()
	var sb strings.Builder
	if err := runWAL(&sb, sjoinWALOpts(strategy, group, crashAt, doRecover)); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunWALCleanRun(t *testing.T) {
	out := runSjoinWAL(t, "all", 1, 0, false)
	for _, want := range []string{"WAL on (group commit 1)", "wal:", "commits", "syncs",
		"collections: |R|=13 |S|=13", "scan", "tree", "index"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WAL run output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "recovery:") {
		t.Fatalf("clean run without -recover must not report a recovery ledger:\n%s", out)
	}
	// All strategies agree on the result count.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("strategies disagree on result counts: %v\n%s", counts, out)
	}
}

func TestRunWALRecoverWithoutCrash(t *testing.T) {
	out := runSjoinWAL(t, "scan", 4, 0, true)
	if !strings.Contains(out, "recovery:") {
		t.Fatalf("-recover must print the recovery ledger:\n%s", out)
	}
	for _, want := range []string{"records scanned", "replayed onto", "txns committed",
		"0 discarded", "0 torn tail bytes", "collections: |R|=13 |S|=13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("recovery ledger missing %q:\n%s", want, out)
		}
	}
}

func TestRunWALCrashAndRecover(t *testing.T) {
	out := runSjoinWAL(t, "all", 1, 25, false)
	for _, want := range []string{"crash: fault: injected crash at write 25",
		"recovery:", "records scanned", "torn tail bytes", "discarded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("crashed run output missing %q:\n%s", want, out)
		}
	}
	// The recovered database still answers queries (a committed prefix of
	// the load survives the crash) and all requested strategies agree.
	counts := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			counts[f[1]] = true
		}
	}
	if len(counts) != 1 {
		t.Fatalf("post-recovery strategies disagree: %v\n%s", counts, out)
	}
}

func TestRunWALCrashVeryEarly(t *testing.T) {
	// Crashing on the first physical write loses even the collection
	// creations; recovery must still succeed and the tool must say so
	// rather than erroring out.
	out := runSjoinWAL(t, "all", 1, 1, false)
	if !strings.Contains(out, "recovery:") {
		t.Fatalf("early crash must still run recovery:\n%s", out)
	}
	if !strings.Contains(out, "nothing to join") && !strings.Contains(out, "collections: |R|=") {
		t.Fatalf("early crash output must report surviving state either way:\n%s", out)
	}
}

func TestRunWALErrors(t *testing.T) {
	var sb strings.Builder
	bad := sjoinWALOpts("all", 1, 0, false)
	bad.op = "bogus"
	if err := runWAL(&sb, bad); err == nil {
		t.Error("bad operator must fail")
	}
	if err := runWAL(&sb, sjoinWALOpts("warp", 1, 0, false)); err == nil {
		t.Error("bad strategy must fail")
	}
	zero := sjoinWALOpts("all", 1, 0, false)
	zero.buffer = 0
	if err := runWAL(&sb, zero); err == nil {
		t.Error("zero buffer must fail")
	}
	missing := sjoinWALOpts("all", 1, 0, false)
	missing.seedPath = "/nonexistent/snapshot.bin"
	if err := runWAL(&sb, missing); err == nil {
		t.Error("missing snapshot file must fail")
	}
}

// strategyTable extracts the per-strategy result rows from a run's output.
func strategyTable(out string) []string {
	var rows []string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 7 && (f[0] == "scan" || f[0] == "tree" || f[0] == "index") {
			rows = append(rows, strings.Join(f, " "))
		}
	}
	return rows
}

// TestRunWALSnapshotRoundTrip checkpoints during the load, exports a
// snapshot, seeds a second run from it, and requires the replica's
// strategy table — results and measured I/O — to be identical.
func TestRunWALSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.bin")
	src := sjoinWALOpts("all", 1, 0, false)
	src.ckptEvery = 7
	src.exportPath = snap
	var sb strings.Builder
	if err := runWAL(&sb, src); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"checkpoints: ", "pages flushed", "log pages truncated",
		"snapshot: wrote " + snap} {
		if !strings.Contains(out, want) {
			t.Fatalf("source run output missing %q:\n%s", want, out)
		}
	}

	replica := sjoinWALOpts("all", 1, 0, false)
	replica.seedPath = snap
	var rb strings.Builder
	if err := runWAL(&rb, replica); err != nil {
		t.Fatal(err)
	}
	rout := rb.String()
	if !strings.Contains(rout, "seeded: "+snap) {
		t.Fatalf("replica run did not report seeding:\n%s", rout)
	}
	srcRows, repRows := strategyTable(out), strategyTable(rout)
	if len(srcRows) != 3 || len(repRows) != 3 {
		t.Fatalf("expected 3 strategy rows each, got %d and %d\nsource:\n%s\nreplica:\n%s",
			len(srcRows), len(repRows), out, rout)
	}
	for i := range srcRows {
		if srcRows[i] != repRows[i] {
			t.Errorf("strategy row diverges:\nsource:  %s\nreplica: %s", srcRows[i], repRows[i])
		}
	}
}
