package main

import (
	"strings"
	"testing"

	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/obs"
)

// testOpts is the shared small configuration of the run tests.
func testOpts(what string) benchOpts {
	return benchOpts{
		what: what, points: 7, pmin: 1e-12, workers: 2,
		faultSeed: 11, faultRate: 0.2, walGroup: 4,
	}
}

func render(t *testing.T, what string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, costmodel.PaperParams(), testOpts(what)); err != nil {
		t.Fatalf("run(%s): %v", what, err)
	}
	return sb.String()
}

func TestRunUnknownWhat(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, costmodel.PaperParams(), testOpts("fig99")); err == nil {
		t.Fatal("unknown -what must fail")
	}
}

func TestScalingOutput(t *testing.T) {
	out := render(t, "scaling")
	for _, want := range []string{"scaling", "workers", "speedup", "pairs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scaling output missing %q:\n%s", want, out)
		}
	}
	// Rows for workers 1 and 2, each reporting the identical pair count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("scaling table too short:\n%s", out)
	}
	var counts []string
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("malformed scaling row %q", line)
		}
		counts = append(counts, fields[3])
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("pair counts differ across worker counts: %v", counts)
		}
	}
}

func TestParamsOutput(t *testing.T) {
	out := render(t, "params")
	for _, want := range []string{"N (derived)", "1111111", "m (derived)", "d (derived)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("params output missing %q:\n%s", want, out)
		}
	}
}

func TestUpdatesOutput(t *testing.T) {
	out := render(t, "updates")
	for _, want := range []string{"U_I", "U_IIa", "U_IIb", "U_III", "2.233e+08"} {
		if !strings.Contains(out, want) {
			t.Fatalf("updates output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Output(t *testing.T) {
	out := render(t, "fig7")
	for _, want := range []string{"UNIFORM", "NO-LOC", "HI-LOC", "level"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 output missing %q", want)
		}
	}
}

func TestSelectFigureOutputs(t *testing.T) {
	for what, header := range map[string]string{
		"fig8":  "Figure 8",
		"fig9":  "Figure 9",
		"fig10": "Figure 10",
	} {
		out := render(t, what)
		if !strings.Contains(out, header) {
			t.Fatalf("%s missing header %q", what, header)
		}
		for _, col := range []string{"C_I", "C_IIa", "C_IIb", "C_III"} {
			if !strings.Contains(out, col) {
				t.Fatalf("%s missing column %q", what, col)
			}
		}
		// 7 points requested → 7 data rows plus header.
		if rows := strings.Count(out, "\n"); rows < 8 {
			t.Fatalf("%s only has %d lines", what, rows)
		}
	}
}

func TestJoinFigureOutputs(t *testing.T) {
	for what, header := range map[string]string{
		"fig11": "Figure 11",
		"fig12": "Figure 12",
		"fig13": "Figure 13",
	} {
		out := render(t, what)
		if !strings.Contains(out, header) {
			t.Fatalf("%s missing header %q", what, header)
		}
		if !strings.Contains(out, "D_III") {
			t.Fatalf("%s missing join-index column", what)
		}
		if !strings.Contains(out, "crossover") && !strings.Contains(out, "no crossover") {
			t.Fatalf("%s missing crossover summary", what)
		}
	}
	// Figure 11's headline: the UNIFORM crossover near 1e-9, resolved on a
	// fine grid (25 points over 12 decades → half-decade steps).
	var sb strings.Builder
	o := testOpts("fig11")
	o.points = 25
	if err := run(&sb, costmodel.PaperParams(), o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "crossover D_IIa vs D_III near p = 1e-09") &&
		!strings.Contains(out, "crossover D_IIa vs D_III near p = 3.2e-10") {
		t.Fatalf("fig11 crossover not at the published point:\n%s", out)
	}
}

func TestFaultsOutput(t *testing.T) {
	var sb strings.Builder
	// A small swept rate keeps the backoff sleeps short in the test, and
	// the attached registry checks the sweep feeds a served registry.
	o := testOpts("faults")
	o.faultRate = 0.04
	o.metrics = obs.NewRegistry()
	if err := run(&sb, costmodel.PaperParams(), o); err != nil {
		t.Fatalf("run(faults): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Retry overhead", "fault rate", "overhead", "matches", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("faults output missing %q:\n%s", want, out)
		}
	}
	// Every row must report the identical match count: the correctness
	// invariant the fault layer guarantees.
	matches := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 8 && strings.HasSuffix(f[2], "x") {
			matches[f[3]] = true
		}
	}
	if len(matches) != 1 {
		t.Fatalf("match counts differ across fault rates: %v\n%s", matches, out)
	}
	// The sweep's databases fed the attached registry.
	var prom strings.Builder
	if err := o.metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"spatialjoin_queries_total", "spatialjoin_pool_misses_total", "spatialjoin_query_seconds_bucket",
	} {
		if !strings.Contains(prom.String(), fam) {
			t.Fatalf("faults sweep did not feed %s:\n%s", fam, prom.String())
		}
	}
}

func TestTraceOverheadOutput(t *testing.T) {
	out := render(t, "trace")
	for _, want := range []string{"Tracing overhead", "mode", "vs off", "nil-trace", "full-trace", "budget"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	// Three data rows, each with a wall-clock column parsing as +x.xx%.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 4 && (f[0] == "off" || f[0] == "nil-trace" || f[0] == "full-trace") {
			rows++
			if !strings.HasSuffix(f[3], "%") {
				t.Fatalf("row %q has no overhead percentage", line)
			}
		}
	}
	if rows != 3 {
		t.Fatalf("trace table has %d rows, want 3:\n%s", rows, out)
	}
}

func TestAllOutputIncludesEverything(t *testing.T) {
	out := render(t, "all")
	for _, want := range []string{
		"Table 2/3", "§4.2", "Figure 7", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("all output missing %q", want)
		}
	}
}
