// Command spatialbench regenerates the paper's evaluation (§4.5): the cost
// curves of Figures 8–13, the ρ profiles of Figure 7, the update-cost
// comparison of §4.2 and the Table 2/3 parameter block — all from the
// analytical model in internal/costmodel.
//
// Usage:
//
//	spatialbench -what all
//	spatialbench -what fig11 -points 25
//	spatialbench -what updates
//
// Output is aligned text: one row per selectivity, one column per strategy,
// matching the series the paper plots. Crossover points are summarized
// under each join figure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"spatialjoin"
	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/join"
	"spatialjoin/internal/modelcheck"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/pred"
	"spatialjoin/internal/relation"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/zorder"
)

func main() {
	what := flag.String("what", "all",
		"what to print: params, fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, updates, validate, scaling, faults, wal, repl, trace, all (scaling, faults, wal, repl and trace are measured, not analytic, and are excluded from all)")
	points := flag.Int("points", 13, "selectivity samples per figure")
	pmin := flag.Float64("pmin", 1e-12, "smallest selectivity for join figures")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"largest worker count in the -what scaling table")
	timeout := flag.Duration("timeout", 0, "per-query deadline in the -what faults table (0 = none)")
	faultSeed := flag.Int64("fault-seed", 11, "seed of the injected fault schedule in -what faults")
	faultRate := flag.Float64("fault-rate", 0.2, "largest transient fault rate swept by -what faults")
	useWAL := flag.Bool("wal", false, "shortcut for -what wal: measure WAL overhead")
	walGroup := flag.Int("wal-group", 8, "group-commit size in the -what wal table")
	crashAt := flag.Int64("crash-at", 0, "with -what wal: crash after this many physical writes, then recover")
	doRecover := flag.Bool("recover", false, "with -what wal: run the crash/recovery cycle and print its ledger")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and pprof on this address; measured runs feed the registry")
	serveFor := flag.Duration("serve-for", 0, "with -metrics-addr: keep serving this long after the run completes")
	flag.Parse()

	if *useWAL {
		*what = "wal"
	}
	o := benchOpts{
		what:      *what,
		points:    *points,
		pmin:      *pmin,
		workers:   *workers,
		timeout:   *timeout,
		faultSeed: *faultSeed,
		faultRate: *faultRate,
		walGroup:  *walGroup,
		crashAt:   *crashAt,
		doRecover: *doRecover,
	}
	if *metricsAddr != "" {
		o.metrics = obs.NewRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatialbench:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: serving http://%s/metrics\n", ln.Addr())
		srv := &http.Server{Handler: obs.NewMux(o.metrics)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "spatialbench: metrics server:", err)
			}
		}()
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "spatialbench: closing metrics server:", err)
			}
		}()
	}
	prm := costmodel.PaperParams()
	if err := run(os.Stdout, prm, o); err != nil {
		fmt.Fprintln(os.Stderr, "spatialbench:", err)
		os.Exit(1)
	}
	if *metricsAddr != "" && *serveFor > 0 {
		time.Sleep(*serveFor)
	}
}

// benchOpts collects run's knob surface; metrics, when non-nil, is the
// registry the measured figures attach to the databases they open.
type benchOpts struct {
	what      string
	points    int
	pmin      float64
	workers   int
	timeout   time.Duration
	faultSeed int64
	faultRate float64
	walGroup  int
	crashAt   int64
	doRecover bool
	metrics   *obs.Registry
}

func run(out io.Writer, prm costmodel.Params, o benchOpts) error {
	figures := map[string]func() error{
		"params":   func() error { return printParams(out, prm) },
		"fig1":     func() error { return printFig1(out) },
		"fig7":     func() error { return printFig7(out, prm) },
		"fig8":     func() error { return printSelectFigure(out, prm, costmodel.Uniform, o.points) },
		"fig9":     func() error { return printSelectFigure(out, prm, costmodel.NoLoc, o.points) },
		"fig10":    func() error { return printSelectFigure(out, prm, costmodel.HiLoc, o.points) },
		"fig11":    func() error { return printJoinFigure(out, prm, costmodel.Uniform, o.points, o.pmin) },
		"fig12":    func() error { return printJoinFigure(out, prm, costmodel.NoLoc, o.points, o.pmin) },
		"fig13":    func() error { return printJoinFigure(out, prm, costmodel.HiLoc, o.points, o.pmin) },
		"updates":  func() error { return printUpdates(out, prm) },
		"validate": func() error { return printValidate(out) },
		"scaling":  func() error { return printScaling(out, o.workers) },
		"faults":   func() error { return printFaults(out, o.faultSeed, o.faultRate, o.timeout, o.metrics) },
		"wal":      func() error { return printWAL(out, o.faultSeed, o.walGroup, o.crashAt, o.doRecover) },
		"repl":     func() error { return printRepl(out, o.faultSeed) },
		"trace":    func() error { return printTraceOverhead(out) },
	}
	if o.what != "all" {
		f, ok := figures[o.what]
		if !ok {
			return fmt.Errorf("unknown -what %q", o.what)
		}
		return f()
	}
	for _, name := range []string{"params", "updates", "fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "validate"} {
		if err := figures[name](); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func printParams(out io.Writer, prm costmodel.Params) error {
	fmt.Fprintln(out, "== Table 2/3: model parameters ==")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "n (tree height)\t%d\n", prm.Nlevels)
	fmt.Fprintf(w, "k (fanout)\t%d\n", prm.K)
	fmt.Fprintf(w, "v (tuple bytes)\t%.0f\n", prm.V)
	fmt.Fprintf(w, "l (utilization)\t%.2f\n", prm.L)
	fmt.Fprintf(w, "h (selector level)\t%d\n", prm.H)
	fmt.Fprintf(w, "T (spatial tuples)\t%.0f\n", prm.T)
	fmt.Fprintf(w, "s (page bytes)\t%.0f\n", prm.S)
	fmt.Fprintf(w, "z (index entries/page)\t%.0f\n", prm.Z)
	fmt.Fprintf(w, "M (buffer pages)\t%.0f\n", prm.M)
	fmt.Fprintf(w, "C_Θ / C_IO / C_U\t%.0f / %.0f / %.0f\n", prm.CTheta, prm.CIO, prm.CU)
	fmt.Fprintf(w, "N (derived)\t%.0f\n", prm.N())
	fmt.Fprintf(w, "m (derived)\t%.0f\n", prm.Mtuples())
	fmt.Fprintf(w, "d (derived)\t%.0f\n", prm.D())
	return w.Flush()
}

func printUpdates(out io.Writer, prm costmodel.Params) error {
	m, err := costmodel.NewModel(prm, costmodel.Uniform, 0.5)
	if err != nil {
		return err
	}
	uc := m.UpdateCosts()
	fmt.Fprintln(out, "== §4.2: insertion costs per strategy (time units) ==")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "U_I (nested loop)\t%.4g\t\n", uc.UI)
	fmt.Fprintf(w, "U_IIa (unclustered tree)\t%.4g\t\n", uc.UIIa)
	fmt.Fprintf(w, "U_IIb (clustered tree)\t%.4g\t\n", uc.UIIb)
	fmt.Fprintf(w, "U_III (join index, all T)\t%.4g\t\n", uc.UIII)
	return w.Flush()
}

func printFig7(out io.Writer, prm costmodel.Params) error {
	fmt.Fprintln(out, "== Figure 7: ρ(o1, o2) with o1 the leftmost leaf (p = 0.5) ==")
	for _, dist := range costmodel.Distributions() {
		series, err := costmodel.Fig7(prm, dist, 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "-- %v --\n", dist)
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintf(w, "level\tfirst ρ\tρ@idx1\tρ@idx k\tlast ρ\t\n")
		for level, s := range series {
			n := len(s.Y)
			atIdx := func(i int) float64 {
				if i >= n {
					i = n - 1
				}
				return s.Y[i]
			}
			fmt.Fprintf(w, "%d\t%.3g\t%.3g\t%.3g\t%.3g\t\n",
				level, s.Y[0], atIdx(1), atIdx(prm.K), s.Y[n-1])
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func printSelectFigure(out io.Writer, prm costmodel.Params, dist costmodel.DistKind, points int) error {
	fig := map[costmodel.DistKind]string{
		costmodel.Uniform: "Figure 8", costmodel.NoLoc: "Figure 9", costmodel.HiLoc: "Figure 10",
	}[dist]
	fmt.Fprintf(out, "== %s: SELECT cost vs selectivity, %v distribution (h = n = %d) ==\n",
		fig, dist, prm.Nlevels)
	ps, err := costmodel.LogSpace(1e-6, 1, points)
	if err != nil {
		return err
	}
	series, err := costmodel.SelectFigure(prm, dist, ps, prm.H)
	if err != nil {
		return err
	}
	return printSeriesTable(out, ps, series, []string{"C_I", "C_IIa", "C_IIb", "C_III"})
}

func printJoinFigure(out io.Writer, prm costmodel.Params, dist costmodel.DistKind, points int, pmin float64) error {
	fig := map[costmodel.DistKind]string{
		costmodel.Uniform: "Figure 11", costmodel.NoLoc: "Figure 12", costmodel.HiLoc: "Figure 13",
	}[dist]
	fmt.Fprintf(out, "== %s: JOIN cost vs selectivity, %v distribution ==\n", fig, dist)
	ps, err := costmodel.LogSpace(pmin, 1, points)
	if err != nil {
		return err
	}
	series, err := costmodel.JoinFigure(prm, dist, ps)
	if err != nil {
		return err
	}
	if err := printSeriesTable(out, ps, series, []string{"D_I", "D_IIa", "D_IIb", "D_III"}); err != nil {
		return err
	}
	// Crossover summary: where the join index overtakes the trees.
	dIII, _ := costmodel.SeriesByName(series, "D_III")
	for _, tree := range []string{"D_IIa", "D_IIb"} {
		ts, _ := costmodel.SeriesByName(series, tree)
		if x, ok := costmodel.Crossover(ts, dIII); ok {
			fmt.Fprintf(out, "   crossover %s vs D_III near p = %.2g (join index wins below)\n", tree, x)
		} else {
			fmt.Fprintf(out, "   no crossover between %s and D_III in range\n", tree)
		}
	}
	return nil
}

func printSeriesTable(out io.Writer, ps []float64, series []costmodel.Series, names []string) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "p\t%s\t\n", strings.Join(names, "\t"))
	cols := make([]costmodel.Series, len(names))
	for i, name := range names {
		s, ok := costmodel.SeriesByName(series, name)
		if !ok {
			return fmt.Errorf("missing series %s", name)
		}
		cols[i] = s
	}
	for i, p := range ps {
		row := make([]string, len(cols))
		for c := range cols {
			row[c] = fmt.Sprintf("%.4g", cols[c].Y[i])
		}
		fmt.Fprintf(w, "%.3g\t%s\t\n", p, strings.Join(row, "\t"))
	}
	return w.Flush()
}

// printValidate compares the model's computation-cost formulas against the
// live algorithms on a small idealized tree (see internal/modelcheck): the
// SELECT formula is exact in expectation under the model's assumptions; the
// JOIN formula is the paper's acknowledged overestimate.
func printValidate(out io.Writer) error {
	prm := costmodel.PaperParams()
	prm.K = 4
	prm.Nlevels = 4
	prm.H = 4
	prm.T = 341
	fmt.Fprintln(out, "== Model validation: measured Θ evaluations vs formulas (k=4, n=4, 341 nodes) ==")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "distribution\tp\tC_IIΘ predicted\tSELECT measured\tratio\tD_IIΘ predicted\tJOIN measured\tratio\t\n")
	for _, dist := range costmodel.Distributions() {
		for _, p := range []float64{0.1, 0.5, 1} {
			m, err := costmodel.NewModel(prm, dist, p)
			if err != nil {
				return err
			}
			sel, err := modelcheck.MeasureSelect(m, 40)
			if err != nil {
				return err
			}
			jn, err := modelcheck.MeasureJoin(m, 5)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%v\t%.2g\t%.1f\t%.1f\t%.2f\t%.4g\t%.4g\t%.2f\t\n",
				dist, p, sel.Predicted, sel.Measured, sel.Ratio(),
				jn.Predicted, jn.Measured, jn.Ratio())
		}
	}
	return w.Flush()
}

// printFig1 renders Figure 1's 8×8 Peano grid: each cell labelled with its
// position in the z-order sequence, demonstrating that spatially adjacent
// cells (e.g. across the horizontal midline) are far apart along the curve
// — the property that defeats sort-merge for spatial data.
func printFig1(out io.Writer) error {
	g, err := zorder.NewGrid(geom.NewRect(0, 0, 8, 8), 3)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "== Figure 1: z-ordering of an 8×8 grid (cell = position in Peano sequence) ==")
	for y := 7; y >= 0; y-- {
		for x := 0; x < 8; x++ {
			z := g.CellIndex(geom.Pt(float64(x)+0.5, float64(y)+0.5))
			fmt.Fprintf(out, "%3d", z)
		}
		fmt.Fprintln(out)
	}
	below := g.CellIndex(geom.Pt(0.5, 3.5))
	above := g.CellIndex(geom.Pt(0.5, 4.5))
	fmt.Fprintf(out, "adjacent cells (0,3)=%d and (0,4)=%d are %d sequence positions apart —\n",
		below, above, int64(above)-int64(below))
	fmt.Fprintln(out, "no spatial total order preserves proximity (§2.2), so sort-merge fails")
	fmt.Fprintln(out, "for every θ except overlaps (see examples/zordermerge).")
	return nil
}

// printFaults measures the live retry overhead of the fault-tolerant
// storage stack: the same tree join runs cold over devices injecting
// transient faults at rates {0, r/4, r/2, r}, and the table reports wall
// time, the pool's retry counts, and the device's faulted attempts. The
// match count must be identical on every row — recovery is only allowed to
// cost time, never correctness. Measured on this machine, not derived from
// the cost model. A non-nil registry is attached to every database the
// sweep opens, so -metrics-addr exposes the run's pool, query, and
// parallel-pool families while it executes; the registry's samplers are
// get-or-create by name, so the most recently opened database is the one
// a scrape observes (the rows run sequentially, which is what a scraper
// watching the sweep wants).
func printFaults(out io.Writer, seed int64, maxRate float64, timeout time.Duration, reg *obs.Registry) error {
	if maxRate < 0 || maxRate >= 1 {
		return fmt.Errorf("fault rate %g out of [0, 1)", maxRate)
	}
	world := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(seed))
	rsRects := datagen.UniformRects(rng, 600, world, 2, 30)
	ssRects := datagen.UniformRects(rng, 600, world, 2, 30)

	fmt.Fprintf(out, "== Retry overhead vs transient fault rate (2×600 rects, tree join, cold cache, best of 3, seed %d) ==\n", seed)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "fault rate\twall ms\toverhead\tmatches\tmisses\tread retries\tfaulted reads\tfaulted writes\t\n")
	var base time.Duration
	for i, rate := range []float64{0, maxRate / 4, maxRate / 2, maxRate} {
		cfg := spatialjoin.DefaultConfig()
		cfg.Workers = 1
		cfg.QueryTimeout = timeout
		cfg.Metrics = reg
		if rate > 0 {
			cfg.Fault = &fault.Options{
				Seed:               seed,
				TransientReadRate:  rate,
				TransientWriteRate: rate / 2,
			}
			// The default backoff delays with a budget that outlasts the
			// swept rates, so the measured overhead includes the sleeps a
			// production-shaped policy would pay.
			retry := storage.DefaultRetryPolicy()
			retry.MaxAttempts = 12
			retry.Seed = seed
			cfg.Retry = &retry
		}
		db, err := spatialjoin.Open(cfg)
		if err != nil {
			return err
		}
		load := func(name string, rects []geom.Rect) (*spatialjoin.Collection, error) {
			c, err := db.CreateCollection(name)
			if err != nil {
				return nil, err
			}
			for _, r := range rects {
				if _, err := c.Insert(r, ""); err != nil {
					return nil, err
				}
			}
			return c, nil
		}
		r, err := load("r", rsRects)
		if err != nil {
			return err
		}
		s, err := load("s", ssRects)
		if err != nil {
			return err
		}
		var elapsed time.Duration
		var matches []spatialjoin.Match
		for rep := 0; rep < 3; rep++ {
			if err := db.DropCache(); err != nil {
				return err
			}
			db.ResetIOStats()
			start := time.Now()
			ms, _, err := db.Join(r, s, spatialjoin.Overlaps(), spatialjoin.TreeStrategy)
			d := time.Since(start)
			if err != nil {
				return fmt.Errorf("join at fault rate %g: %w", rate, err)
			}
			matches = ms
			if elapsed == 0 || d < elapsed {
				elapsed = d
			}
		}
		if i == 0 {
			base = elapsed
		}
		ps, ds := db.IOStats(), db.DiskStats()
		fmt.Fprintf(w, "%.3f\t%.2f\t%.2fx\t%d\t%d\t%d\t%d\t%d\t\n",
			rate, float64(elapsed.Microseconds())/1000, float64(elapsed)/float64(base),
			len(matches), ps.Misses, ps.ReadRetries, ds.ReadFaults, ds.WriteFaults)
	}
	return w.Flush()
}

// printScaling measures the tile-partitioned parallel z-order join on one
// fixed workload across worker counts (powers of two up to maxWorkers) and
// prints wall time, speedup over the sequential run, and the pair count —
// which must be identical on every row, the engine's equivalence
// guarantee. Unlike the figures, these numbers are measured on this
// machine, not derived from the cost model; speedup requires the hardware
// to actually have the cores (GOMAXPROCS caps useful workers).
func printScaling(out io.Writer, maxWorkers int) error {
	if maxWorkers < 1 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	world := geom.NewRect(0, 0, 4096, 4096)
	g, err := zorder.NewGrid(world, 9)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(17))
	rs := datagen.UniformRects(rng, 4000, world, 2, 30)
	ss := datagen.UniformRects(rng, 4000, world, 2, 30)

	var counts []int
	for w := 1; w <= maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	if last := counts[len(counts)-1]; last != maxWorkers {
		counts = append(counts, maxWorkers)
	}

	fmt.Fprintf(out, "== Parallel z-order join scaling (2×4000 rects, level 9, GOMAXPROCS=%d) ==\n",
		runtime.GOMAXPROCS(0))
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "workers\twall ms\tspeedup\tpairs\n")
	var base time.Duration
	for _, n := range counts {
		best := time.Duration(0)
		var pairs int
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			ps, _ := g.ParallelOverlapJoin(rs, ss, n)
			elapsed := time.Since(start)
			pairs = len(ps)
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		if n == 1 {
			base = best
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.2fx\t%d\n",
			n, float64(best.Microseconds())/1000, float64(base)/float64(best), pairs)
	}
	return w.Flush()
}

// traceWorkload mirrors sjoin's workload builder: a model tree's tuples
// bulk-loaded with shuffled placement — the Figure-8 measured-select
// configuration (k = 5, height 4, uniform rectangles).
func traceWorkload(pool *storage.BufferPool) (join.Table, core.Tree, error) {
	rng := rand.New(rand.NewSource(1))
	world := geom.NewRect(0, 0, 1000, 1000)
	tree, n := datagen.ModelTree(rng, world, 5, 4)
	rects := make([]geom.Rect, n)
	core.Walk(tree, func(nd core.Node, _ int) bool {
		if id, ok := nd.Tuple(); ok {
			rects[id] = nd.Bounds()
		}
		return true
	})
	sch, err := relation.NewSchema(
		relation.Column{Name: "id", Type: relation.TypeInt64},
		relation.Column{Name: "mbr", Type: relation.TypeRect},
	)
	if err != nil {
		return join.Table{}, nil, err
	}
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{int64(i), rects[i]}
	}
	rel, err := relation.BulkLoad(pool, "trace", sch, tuples, relation.PlaceShuffled, 0.75, 1)
	if err != nil {
		return join.Table{}, nil, err
	}
	tab, err := join.NewTable(rel, 1, pool)
	if err != nil {
		return join.Table{}, nil, err
	}
	return tab, tree, nil
}

// printTraceOverhead prices the tracing hooks on the measured Figure-8
// select workload, the table-shaped twin of BenchmarkFig8TraceOverhead:
// "off" replicates the executor's pre-hook call path as the baseline,
// "nil-trace" is the shipped off-by-default state every un-traced query
// pays (a context lookup plus nil checks), and "full-trace" arms a fresh
// trace per query. The nil-trace row must stay within the 2% budget.
func printTraceOverhead(out io.Writer) error {
	pool, err := storage.NewBufferPool(storage.NewDisk(2000), 16)
	if err != nil {
		return err
	}
	tab, tree, err := traceWorkload(pool)
	if err != nil {
		return err
	}
	q := geom.NewRect(100, 100, 420, 420)
	op := pred.Overlaps{}
	const reps = 300

	touch := func(n core.Node) error {
		id, ok := n.Tuple()
		if !ok {
			return nil
		}
		rid, err := tab.Rel.RID(id)
		if err != nil {
			return err
		}
		_, err = tab.Pool.Fetch(rid.Page)
		return err
	}
	rows := []struct {
		name  string
		note  string
		query func() error
	}{
		{"off", "pre-hook call path, no trace plumbing", func() error {
			opts := &core.SelectOptions{Traversal: core.BreadthFirst, Touch: touch}
			_, err := core.Select(tree, q, op, opts)
			return err
		}},
		{"nil-trace", "shipped default: context lookup + nil checks", func() error {
			_, _, err := join.TreeSelectCtx(context.Background(), tree, tab, q, op, core.BreadthFirst)
			return err
		}},
		{"full-trace", "obs.WithTrace armed per query", func() error {
			ctx, _ := obs.WithTrace(context.Background())
			_, _, err := join.TreeSelectCtx(ctx, tree, tab, q, op, core.BreadthFirst)
			return err
		}},
	}
	measure := func(query func() error) (time.Duration, error) {
		// One warm-up query absorbs lazy initialization before the clock
		// starts; every timed query runs cold via DropAll.
		if err := pool.DropAll(); err != nil {
			return 0, err
		}
		if err := query(); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := pool.DropAll(); err != nil {
				return 0, err
			}
			if err := query(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	fmt.Fprintf(out, "== Tracing overhead, measured Figure-8 select workload (cold cache, %d queries per row) ==\n", reps)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "mode\twall ms\tus/query\tvs off\tnote\n")
	var base time.Duration
	for i, row := range rows {
		d, err := measure(row.query)
		if err != nil {
			return fmt.Errorf("%s row: %w", row.name, err)
		}
		if i == 0 {
			base = d
		}
		fmt.Fprintf(w, "%s\t%.2f\t%.1f\t%+.2f%%\t%s\n",
			row.name, float64(d.Microseconds())/1000,
			float64(d.Microseconds())/float64(reps),
			100*(float64(d)/float64(base)-1), row.note)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "budget: nil-trace must stay within 2% of off (asserted by BenchmarkFig8TraceOverhead);")
	fmt.Fprintln(out, "single-run wall clocks are noisy — prefer the benchmark for a pass/fail verdict.")
	return nil
}
