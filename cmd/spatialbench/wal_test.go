package main

import (
	"strings"
	"testing"

	"spatialjoin/internal/costmodel"
)

func TestWALOverheadOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, costmodel.PaperParams(), testOpts("wal")); err != nil {
		t.Fatalf("run(wal): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"WAL overhead", "wal off", "sync every commit",
		"group commit 4", "inserts/s", "device writes", "log writes", "bytes logged", "1.00x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wal output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "recovery:") {
		t.Fatalf("wal table without -crash-at/-recover must not run recovery:\n%s", out)
	}
	// The wal-off row logs nothing; both WAL rows log the same byte stream
	// (policy changes when syncs happen, not what is logged).
	var logged []string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 9 && strings.HasSuffix(f[len(f)-6], "x") {
			logged = append(logged, f[len(f)-2])
		}
	}
	if len(logged) != 3 || logged[0] != "0" || logged[1] == "0" || logged[1] != logged[2] {
		t.Fatalf("bytes-logged column inconsistent: %v\n%s", logged, out)
	}
}

func TestWALCrashCycleOutput(t *testing.T) {
	var sb strings.Builder
	o := testOpts("wal")
	o.crashAt = 40
	if err := run(&sb, costmodel.PaperParams(), o); err != nil {
		t.Fatalf("run(wal, crash-at 40): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"crash cycle", "injected crash at write 40",
		"recovery:", "records scanned", "torn tail bytes", "survived:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("crash-cycle output missing %q:\n%s", want, out)
		}
	}
}

func TestWALRecoverWithoutCrash(t *testing.T) {
	var sb strings.Builder
	o := testOpts("wal")
	o.doRecover = true
	if err := run(&sb, costmodel.PaperParams(), o); err != nil {
		t.Fatalf("run(wal, recover): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"recovery:", "0 torn tail bytes", "0 discarded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("recover-only output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "survived: 600 of 600") {
		t.Fatalf("recover without crash must keep every insert:\n%s", out)
	}
}
