package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/repl"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/wire"
)

// replRow is one measured catch-up: a replica position fixed right after
// a seed, a divergence committed behind it, and the bytes each of the
// three catch-up forms ships from that position.
type replRow struct {
	divergence int
	seedBytes  int
	seedPages  int
	tailBytes  int
	deltaBytes int
	deltaInfo  spatialjoin.DeltaInfo
	fullBytes  int
	fullPages  int
}

// measureReplRow builds a fresh primary with the deterministic base
// workload, fixes a replica position by exporting a seed snapshot, commits
// divergence more inserts, and ships the WAL tail, the snapshot delta, and
// a full snapshot from that position through a live replication source.
func measureReplRow(seed int64, base, divergence int) (replRow, error) {
	row := replRow{divergence: divergence}
	cfg := spatialjoin.DefaultConfig()
	cfg.Workers = 1
	cfg.WAL = true
	cfg.WALGroupCommit = 8
	db, err := spatialjoin.Open(cfg)
	if err != nil {
		return row, err
	}
	defer db.Close()

	world := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(seed))
	col, err := db.CreateCollection("r")
	if err != nil {
		return row, err
	}
	insert := func(n int) error {
		for _, r := range datagen.UniformRects(rng, n, world, 2, 30) {
			if _, err := col.Insert(r, ""); err != nil {
				return err
			}
		}
		return nil
	}
	if err := insert(base); err != nil {
		return row, err
	}
	src, err := repl.NewSource(db, repl.SourceOptions{})
	if err != nil {
		return row, err
	}
	defer src.Close()

	// Fix the replica's position: the state right after a full seed.
	var seedBuf countingWriter
	seedInfo, err := db.ExportSnapshot(&seedBuf)
	if err != nil {
		return row, err
	}
	row.seedBytes, row.seedPages = int(seedBuf), seedInfo.Pages
	position := db.DurableLSN()
	if err := insert(divergence); err != nil {
		return row, err
	}

	// Tail first: it needs the log the delta's checkpoint would seal.
	t, err := src.OpenTail(position)
	if err != nil {
		return row, err
	}
	defer t.Close()
	for {
		c, err := t.Next(wire.MaxReplChunk)
		if err != nil {
			return row, err
		}
		if len(c.Records) == 0 {
			break
		}
		row.tailBytes += len(c.Records)
	}

	st, err := src.OpenSnap(position)
	if err != nil {
		return row, err
	}
	defer st.Close()
	var deltaBuf bytes.Buffer
	for {
		data, err := st.Next(wire.MaxReplChunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return row, err
		}
		deltaBuf.Write(data)
	}
	if st.Full {
		return row, fmt.Errorf("source shipped a full snapshot where a delta was expected")
	}
	row.deltaBytes = deltaBuf.Len()
	// Decode the shipped stream against a scratch disk to count the pages
	// it actually carries.
	row.deltaInfo, err = spatialjoin.ApplySnapshotDelta(storage.NewDisk(cfg.PageSize), &deltaBuf)
	if err != nil {
		return row, err
	}

	var fullBuf countingWriter
	fullInfo, err := db.ExportSnapshot(&fullBuf)
	if err != nil {
		return row, err
	}
	row.fullBytes, row.fullPages = int(fullBuf), fullInfo.Pages
	return row, nil
}

// printRepl measures what a replica's catch-up actually costs through the
// live replication source, for the three ways a replica can converge:
// tailing the WAL record by record, patching from a snapshot delta (only
// the pages dirtied behind the replica's position, plus the log), and
// re-seeding from a full snapshot. Each row rebuilds the same primary
// from the seed, fixes the replica position right after a snapshot seed,
// and diverges by a different insert count, so rows are independent and
// deterministic in the seed. The point is the shape — tail cost tracks
// the divergence, delta cost tracks the dirtied page set, full-snapshot
// cost tracks the whole database — which is why the follower prefers
// them in exactly that order.
func printRepl(out io.Writer, seed int64) error {
	const baseRects = 2000
	rows := make([]replRow, 0, 3)
	for _, divergence := range []int{50, 200, 800} {
		row, err := measureReplRow(seed, baseRects, divergence)
		if err != nil {
			return fmt.Errorf("divergence %d: %w", divergence, err)
		}
		rows = append(rows, row)
	}
	fmt.Fprintf(out, "== Replica catch-up cost: WAL tail vs delta vs full snapshot (base %d rects, seed %d) ==\n",
		baseRects, seed)
	fmt.Fprintf(out, "seed snapshot at the fixed position: %d bytes, %d pages\n",
		rows[0].seedBytes, rows[0].seedPages)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "divergence (inserts)\ttail bytes\tdelta bytes\tdelta data pages\tdelta log pages\tfull bytes\tfull pages\t\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.divergence, r.tailBytes, r.deltaBytes, r.deltaInfo.DataPages, r.deltaInfo.LogPages,
			r.fullBytes, r.fullPages)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(out, "tail ships only the records behind the position; the delta ships the dirtied")
	fmt.Fprintln(out, "pages plus the whole log; the full snapshot ships every page of the device.")
	return nil
}

// countingWriter counts bytes without keeping them.
type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
