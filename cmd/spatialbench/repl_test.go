package main

import (
	"strconv"
	"strings"
	"testing"

	"spatialjoin/internal/costmodel"
)

func TestReplCatchUpOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, costmodel.PaperParams(), testOpts("repl")); err != nil {
		t.Fatalf("run(repl): %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Replica catch-up cost", "seed snapshot",
		"divergence (inserts)", "tail bytes", "delta data pages", "full pages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repl output missing %q:\n%s", want, out)
		}
	}
	// Parse the data rows: divergence, tail bytes, delta bytes, delta data
	// pages, delta log pages, full bytes, full pages.
	var rows [][7]int
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 7 {
			continue
		}
		var row [7]int
		ok := true
		for i, s := range f {
			n, err := strconv.Atoi(s)
			if err != nil {
				ok = false
				break
			}
			row[i] = n
		}
		if ok {
			rows = append(rows, row)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 data rows, parsed %d:\n%s", len(rows), out)
	}
	for i, r := range rows {
		// The delta must be proportional to the divergence, not the
		// database: its data pages are a small fraction of the device.
		if r[3] == 0 || r[3] >= r[6] {
			t.Errorf("row %d: delta shipped %d data pages of a %d-page device", i, r[3], r[6])
		}
		if i == 0 {
			continue
		}
		// More divergence must cost more tail bytes and more delta pages,
		// while the full snapshot stays the same order as the seed.
		if r[1] <= rows[i-1][1] || r[3] <= rows[i-1][3] {
			t.Errorf("row %d: catch-up cost not increasing with divergence: %v then %v", i, rows[i-1], r)
		}
	}
}
