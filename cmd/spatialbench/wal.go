package main

// -what wal measures the price of crash consistency: the same insert
// workload runs with the WAL off, with a sync on every commit, and with
// group commit, and the table reports throughput and physical writes so the
// measured overhead can be held against the paper's §4.2 analytic update
// costs (which charge C_U per R-tree node but assume free durability).
// -crash-at and -recover extend the run with a live crash → reboot →
// recover cycle and print the recovery ledger.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"spatialjoin"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
)

const walBenchRects = 600

func walBenchConfig(seed int64, useWAL bool, group int) spatialjoin.Config {
	cfg := spatialjoin.DefaultConfig()
	cfg.Workers = 1
	cfg.WAL = useWAL
	cfg.WALGroupCommit = group
	cfg.Fault = &fault.Options{Seed: seed}
	return cfg
}

// walLoad inserts the workload (each insert one transaction under a WAL)
// and returns the collection.
func walLoad(db *spatialjoin.Database, rects []geom.Rect) (*spatialjoin.Collection, error) {
	c, err := db.CreateCollection("r")
	if err != nil {
		return nil, err
	}
	for _, r := range rects {
		if _, err := c.Insert(r, ""); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// printWAL measures WAL overhead on this machine and, when asked, runs a
// crash → recover cycle. The row set is fixed — off, sync-every-commit,
// group-commit — because those are the three durability policies the write
// path distinguishes.
func printWAL(out io.Writer, seed int64, group int, crashAt int64, doRecover bool) error {
	if group < 2 {
		group = 8
	}
	world := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(seed))
	rects := datagen.UniformRects(rng, walBenchRects, world, 2, 30)

	fmt.Fprintf(out, "== WAL overhead: %d inserts, one txn each (measured, seed %d) ==\n",
		len(rects), seed)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "policy\twall ms\tinserts/s\toverhead\tdevice writes\tlog writes\tsyncs\tbytes logged\tpadding\t\n")
	var base time.Duration
	rows := []struct {
		name   string
		useWAL bool
		group  int
	}{
		{"wal off", false, 0},
		{"sync every commit", true, 1},
		{fmt.Sprintf("group commit %d", group), true, group},
	}
	for i, row := range rows {
		db, err := spatialjoin.Open(walBenchConfig(seed, row.useWAL, row.group))
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := walLoad(db, rects); err != nil {
			return err
		}
		if err := db.Flush(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if i == 0 {
			base = elapsed
		}
		ds, ws := db.DiskStats(), db.WALStats()
		fmt.Fprintf(w, "%s\t%.2f\t%.0f\t%.2fx\t%d\t%d\t%d\t%d\t%d\t\n",
			row.name, float64(elapsed.Microseconds())/1000,
			float64(len(rects))/elapsed.Seconds(), float64(elapsed)/float64(base),
			ds.Writes, ws.PageWrites, ws.Syncs, ws.BytesLogged, ws.PaddingBytes)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if crashAt <= 0 && !doRecover {
		return nil
	}
	fmt.Fprintf(out, "-- crash cycle: WAL on (sync every commit), crash after %d writes --\n", crashAt)
	cfg := walBenchConfig(seed, true, 1)
	db, err := spatialjoin.Open(cfg)
	if err != nil {
		return err
	}
	if crashAt > 0 {
		db.FaultDisk().SetCrashAfterWrites(crashAt)
	}
	crashed := func() (crashed bool) {
		defer func() {
			if v := recover(); v != nil {
				c, ok := fault.AsCrash(v)
				if !ok {
					panic(v)
				}
				fmt.Fprintf(out, "crash: %v\n", c)
				crashed = true
			}
		}()
		_, err = walLoad(db, rects)
		return false
	}()
	if err != nil {
		return err
	}
	if fd := db.FaultDisk(); fd.Crashed() {
		fd.Reboot()
	}
	rdb, stats, err := spatialjoin.Reopen(cfg, db.Device())
	if err != nil {
		return fmt.Errorf("recovering: %w", err)
	}
	fmt.Fprintf(out, "recovery: %d records scanned, %d replayed onto %d pages, %d txns committed, %d discarded, %d torn tail bytes (%d torn pages)\n",
		stats.RecordsScanned, stats.RecordsReplayed, stats.PagesRestored,
		stats.TxnsCommitted, stats.TxnsDiscarded, stats.TornTailBytes, stats.TornPages)
	survived := 0
	if c, ok := rdb.Collection("r"); ok {
		survived = c.Len()
	}
	fmt.Fprintf(out, "survived: %d of %d inserts committed before the crash (crashed=%v)\n",
		survived, len(rects), crashed)
	return nil
}
