package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodeContract verifies the machine-readable exit codes: 0 for the
// clean production tree, 1 with diagnostics on the deliberately dirty
// fixtures, 2 for usage errors.
func TestExitCodeContract(t *testing.T) {
	var out, errb bytes.Buffer

	if code := run([]string{"./..."}, &out, &errb); code != exitClean {
		t.Fatalf("sjlint ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed diagnostics:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	fixture := "./internal/analysis/testdata/src/floateq"
	if code := run([]string{fixture}, &out, &errb); code != exitFindings {
		t.Fatalf("sjlint %s = exit %d, want %d\nstderr:\n%s", fixture, code, exitFindings, errb.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatalf("fixture run did not report floateq findings:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != exitError {
		t.Fatalf("unknown analyzer = exit %d, want %d", code, exitError)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./internal/analysis/testdata/src/errdrop"}, &out, &errb)
	if code != exitFindings {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitFindings, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 || diags[0].Analyzer != "errdrop" || diags[0].Line == 0 {
		t.Fatalf("unexpected JSON diagnostics: %+v", diags)
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != exitClean {
		t.Fatalf("-list = exit %d", code)
	}
	for _, name := range []string{"rawdisk", "atomiccounter", "floateq", "errdrop", "ctxpool"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
