package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExitCodeContract verifies the machine-readable exit codes: 0 for the
// clean production tree, 1 with diagnostics on the deliberately dirty
// fixtures, 2 for usage errors.
func TestExitCodeContract(t *testing.T) {
	var out, errb bytes.Buffer

	if code := run([]string{"./..."}, &out, &errb); code != exitClean {
		t.Fatalf("sjlint ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed diagnostics:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	fixture := "./internal/analysis/testdata/src/floateq"
	if code := run([]string{fixture}, &out, &errb); code != exitFindings {
		t.Fatalf("sjlint %s = exit %d, want %d\nstderr:\n%s", fixture, code, exitFindings, errb.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Fatalf("fixture run did not report floateq findings:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-run", "nosuch"}, &out, &errb); code != exitError {
		t.Fatalf("unknown analyzer = exit %d, want %d", code, exitError)
	}
}

// jsonReport mirrors the -json output shape.
type jsonReport struct {
	Diagnostics []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	} `json:"diagnostics"`
	Suppressed map[string]int `json:"suppressed"`
	Warnings   []string       `json:"warnings"`
}

func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./internal/analysis/testdata/src/errdrop"}, &out, &errb)
	if code != exitFindings {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitFindings, errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Diagnostics) == 0 || rep.Diagnostics[0].Analyzer != "errdrop" || rep.Diagnostics[0].Line == 0 {
		t.Fatalf("unexpected JSON diagnostics: %+v", rep.Diagnostics)
	}
	// The errdrop fixture carries a justified suppression; the report must
	// account for it per analyzer.
	if rep.Suppressed["errdrop"] == 0 {
		t.Fatalf("suppressed count missing from report: %+v", rep.Suppressed)
	}
}

// TestTestsFlag verifies -tests extends analysis to _test.go files: the
// production tree stays clean even with them included (every finding fixed
// or justified), and the suppression accounting shows test-file directives
// were honored.
func TestTestsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-tests", "-json", "./..."}, &out, &errb)
	if code != exitClean {
		t.Fatalf("sjlint -tests ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, out.String(), errb.String())
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Suppressed["pinunpin"] == 0 {
		t.Fatalf("expected pinunpin suppressions from storage tests, got %+v", rep.Suppressed)
	}
	if len(rep.Warnings) != 0 {
		t.Fatalf("tree has unjustified ignore directives:\n%s", strings.Join(rep.Warnings, "\n"))
	}
}

// TestBareDirectiveWarning verifies an //sjlint:ignore with no written
// justification still suppresses but is warned about on stderr and in the
// JSON report.
func TestBareDirectiveWarning(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

import "sync"

func f(mu *sync.Mutex, bad bool) {
	//sjlint:ignore lockbalance
	mu.Lock()
	if bad {
		return
	}
	mu.Unlock()
}
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	gomod := "module scratch\n\ngo 1.21\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	var out, errb bytes.Buffer
	code := run([]string{"-run", "lockbalance", "."}, &out, &errb)
	if code != exitClean {
		t.Fatalf("bare directive must still suppress; exit %d\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "without a justification") {
		t.Fatalf("no warning for bare directive on stderr:\n%s", errb.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != exitClean {
		t.Fatalf("-list = exit %d", code)
	}
	for _, name := range []string{"rawdisk", "atomiccounter", "floateq", "errdrop", "ctxpool"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}
