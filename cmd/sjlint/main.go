// Command sjlint is the repository's static-analysis driver. It loads the
// named packages (default ./...), type-checks them with the standard
// library's go/parser + go/types, and runs the domain-specific analyzers
// from internal/analysis concurrently over each package:
//
//	rawdisk        all physical I/O must flow through storage.BufferPool
//	atomiccounter  fields documented atomic are accessed atomically only
//	floateq        no raw ==/!= on float geometry values
//	errdrop        storage/pool errors must be checked
//	ctxpool        parallel.Run/RunChunks errors must be checked
//
// Findings can be suppressed with a trailing or preceding line comment:
//
//	//sjlint:ignore analyzer[,analyzer] reason...
//
// Exit codes are machine-readable: 0 = clean, 1 = findings reported,
// 2 = usage, load, or type-check failure.
//
// Usage:
//
//	go run ./cmd/sjlint [-list] [-run names] [-json] [packages...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"spatialjoin/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("sjlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		list    = flags.Bool("list", false, "list available analyzers and exit")
		runOnly = flags.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		asJSON  = flags.Bool("json", false, "emit diagnostics as a JSON array")
	)
	flags.Usage = func() {
		fmt.Fprintln(stderr, "usage: sjlint [-list] [-run names] [-json] [packages...]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *runOnly != "" {
		var err error
		analyzers, err = analysis.ByName(*runOnly)
		if err != nil {
			fmt.Fprintf(stderr, "sjlint: %v\n", err)
			return exitError
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "sjlint: %v\n", err)
		return exitError
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sjlint: %v\n", err)
		return exitError
	}

	cwd, _ := os.Getwd()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		all = append(all, analysis.Run(pkg, analyzers)...)
	}

	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiag{
				File:     relPath(cwd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "sjlint: %v\n", err)
			return exitError
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	if len(all) > 0 {
		return exitFindings
	}
	return exitClean
}

// relPath shortens abs to a path relative to base when that is tidier.
func relPath(base, abs string) string {
	if base == "" {
		return abs
	}
	rel, err := filepath.Rel(base, abs)
	if err != nil || len(rel) >= len(abs) {
		return abs
	}
	return rel
}
