// Command sjlint is the repository's static-analysis driver. It loads the
// named packages (default ./...), type-checks them with the standard
// library's go/parser + go/types, and runs the domain-specific analyzers
// from internal/analysis concurrently over each package:
//
//	rawdisk        all physical I/O must flow through storage.BufferPool
//	atomiccounter  fields documented atomic are accessed atomically only
//	floateq        no raw ==/!= on float geometry values
//	errdrop        storage/pool errors must be checked
//	ctxpool        parallel.Run/RunChunks errors must be checked
//	pinunpin       successful BufferPool.Pin reaches Unpin on every path
//	lockbalance    manual Lock/Unlock balance; no double-lock
//	spanclose      obs spans are ended on every outcome
//	semrelease     admission tokens are released on every path
//
// (and more; see -list for the full suite.)
//
// Findings can be suppressed with a trailing or preceding line comment:
//
//	//sjlint:ignore analyzer[,analyzer] reason...
//
// The reason is required in spirit: a directive without one still
// suppresses, but sjlint prints a warning for each bare directive.
//
// With -tests, each package's _test.go files are analyzed too (both
// in-package and external foo_test files); analyzers marked as
// production-only disciplines skip test files automatically.
//
// Exit codes are machine-readable: 0 = clean, 1 = findings reported,
// 2 = usage, load, or type-check failure.
//
// Usage:
//
//	go run ./cmd/sjlint [-list] [-run names] [-tests] [-json] [packages...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"spatialjoin/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("sjlint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		list     = flags.Bool("list", false, "list available analyzers and exit")
		runOnly  = flags.String("run", "", "comma-separated subset of analyzers to run (default: all)")
		asJSON   = flags.Bool("json", false, "emit a JSON report (diagnostics, suppression counts, warnings)")
		withTest = flags.Bool("tests", false, "also analyze _test.go files")
	)
	flags.Usage = func() {
		fmt.Fprintln(stderr, "usage: sjlint [-list] [-run names] [-tests] [-json] [packages...]")
		flags.PrintDefaults()
	}
	if err := flags.Parse(args); err != nil {
		return exitError
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *runOnly != "" {
		var err error
		analyzers, err = analysis.ByName(*runOnly)
		if err != nil {
			fmt.Fprintf(stderr, "sjlint: %v\n", err)
			return exitError
		}
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "sjlint: %v\n", err)
		return exitError
	}
	loader.IncludeTests = *withTest
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sjlint: %v\n", err)
		return exitError
	}

	cwd, _ := os.Getwd()
	var all []analysis.Diagnostic
	suppressed := make(map[string]int)
	var bare []string
	for _, pkg := range pkgs {
		res := analysis.RunAll(pkg, analyzers)
		all = append(all, res.Diagnostics...)
		for name, n := range res.Suppressed {
			suppressed[name] += n
		}
		for _, pos := range res.BareDirectives {
			bare = append(bare, fmt.Sprintf("%s:%d", relPath(cwd, pos.Filename), pos.Line))
		}
	}
	sort.Strings(bare)
	warnings := make([]string, 0, len(bare))
	for _, at := range bare {
		warnings = append(warnings, fmt.Sprintf("%s: //sjlint:ignore without a justification; add a reason after the analyzer list", at))
	}

	if *asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		type report struct {
			Diagnostics []jsonDiag     `json:"diagnostics"`
			Suppressed  map[string]int `json:"suppressed"`
			Warnings    []string       `json:"warnings"`
		}
		rep := report{
			Diagnostics: make([]jsonDiag, 0, len(all)),
			Suppressed:  suppressed,
			Warnings:    warnings,
		}
		for _, d := range all {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File:     relPath(cwd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "sjlint: %v\n", err)
			return exitError
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	// Warnings are advisory: they go to stderr and do not affect the exit
	// code, so a justified-but-terse tree still gates on findings alone.
	for _, w := range warnings {
		fmt.Fprintf(stderr, "sjlint: warning: %s\n", w)
	}

	if len(all) > 0 {
		return exitFindings
	}
	return exitClean
}

// relPath shortens abs to a path relative to base when that is tidier.
func relPath(base, abs string) string {
	if base == "" {
		return abs
	}
	rel, err := filepath.Rel(base, abs)
	if err != nil || len(rel) >= len(abs) {
		return abs
	}
	return rel
}
