package spatialjoin

import (
	"spatialjoin/internal/costmodel"
)

// Analytical cost model re-exports (§4 of the paper). These let downstream
// users evaluate the paper's formulas — and regenerate Figures 7–13 —
// without touching internal packages.
type (
	// ModelParams are the cost-model parameters of Table 2.
	ModelParams = costmodel.Params
	// Distribution is one of the paper's match-probability distributions.
	Distribution = costmodel.DistKind
	// CostModel binds parameters, a distribution and a selectivity.
	CostModel = costmodel.Model
	// UpdateCosts / SelectCosts / JoinCosts hold the per-strategy cost
	// formula results.
	UpdateCosts = costmodel.UpdateCosts
	// SelectCosts holds the §4.3 selection costs.
	SelectCosts = costmodel.SelectCosts
	// JoinCosts holds the §4.4 join costs.
	JoinCosts = costmodel.JoinCosts
	// Series is one labelled curve of a figure.
	Series = costmodel.Series
)

// The three distributions of §4.1.
const (
	// DistUniform is the UNIFORM distribution: ρ = p everywhere.
	DistUniform = costmodel.Uniform
	// DistNoLoc is NO-LOC: larger objects match more readily, no locality.
	DistNoLoc = costmodel.NoLoc
	// DistHiLoc is HI-LOC: tree-proximal objects match more readily.
	DistHiLoc = costmodel.HiLoc
)

// PaperParams returns the exact parameter values of Table 3.
func PaperParams() ModelParams { return costmodel.PaperParams() }

// NewCostModel validates and builds a cost model for selectivity p.
func NewCostModel(prm ModelParams, dist Distribution, p float64) (CostModel, error) {
	return costmodel.NewModel(prm, dist, p)
}

// SelectFigure regenerates the curves of Figures 8–10 for the given
// distribution over the selectivities ps, with the selector at level h.
func SelectFigure(prm ModelParams, dist Distribution, ps []float64, h int) ([]Series, error) {
	return costmodel.SelectFigure(prm, dist, ps, h)
}

// JoinFigure regenerates the curves of Figures 11–13.
func JoinFigure(prm ModelParams, dist Distribution, ps []float64) ([]Series, error) {
	return costmodel.JoinFigure(prm, dist, ps)
}

// LogSpace returns n logarithmically spaced selectivities over [lo, hi].
func LogSpace(lo, hi float64, n int) ([]float64, error) {
	return costmodel.LogSpace(lo, hi, n)
}
