package spatialjoin

// Chaos harness: the robustness counterpart of the cross-strategy
// equivalence harness. Under deterministic seeded fault schedules —
// transient-only, mixed with in-flight corruption, and permanent index-page
// loss — every strategy at every worker count must return either the
// byte-identical canonically sorted match set or a typed error
// (*fault.Error, *storage.ChecksumError, or a context error). A silently
// wrong answer is the one outcome that must never happen.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/fault"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// chaosRects returns the fixed workload both the faulty databases and the
// healthy baseline load.
func chaosRects() (rs, ss []Rect, world Rect) {
	world = geom.NewRect(0, 0, 800, 800)
	rng := rand.New(rand.NewSource(1203))
	rs = datagen.UniformRects(rng, 120, world, 2, 35)
	ss = datagen.ClusteredRects(rng, 120, 6, world, 100, 20)
	return rs, ss, world
}

// chaosBaseline computes the ground-truth match set on a healthy database.
func chaosBaseline(t *testing.T) []Match {
	t.Helper()
	rs, ss, _ := chaosRects()
	db, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := loadRects(t, db, "r", rs)
	s := loadRects(t, db, "s", ss)
	want, _, err := db.Join(r, s, Overlaps(), ScanStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("chaos workload produced no matches")
	}
	return want
}

// chaosOpen opens a database over the given fault schedule, with a retry
// budget generous enough that rate-driven schedules almost never exhaust
// it, and loads the chaos workload plus a join index.
func chaosOpen(t *testing.T, workers int, opts fault.Options) (*Database, *Collection, *Collection) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	cfg.BufferPages = 48 // small pool: faults exercise eviction write-backs too
	cfg.Fault = &opts
	cfg.Retry = &storage.RetryPolicy{MaxAttempts: 10, Seed: opts.Seed}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, ss, _ := chaosRects()
	r := loadRects(t, db, "r", rs)
	s := loadRects(t, db, "s", ss)
	if _, _, err := db.BuildJoinIndex(r, s, Overlaps()); err != nil {
		t.Fatalf("BuildJoinIndex under faults: %v", err)
	}
	return db, r, s
}

// typedFailure reports whether err is one of the sanctioned failure shapes:
// an injected fault, a checksum mismatch, or a context error. Anything else
// under chaos is a bug.
func typedFailure(err error) bool {
	var fe *fault.Error
	return errors.As(err, &fe) || storage.IsChecksum(err) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// TestChaosTransientRecovery runs a transient-only schedule mild enough
// that the retry budget always recovers: every strategy must return the
// exact baseline, retries must be visible in PoolStats, injected faults in
// DiskStats, and the logical/physical attempt accounting must balance.
func TestChaosTransientRecovery(t *testing.T) {
	want := chaosBaseline(t)
	for _, workers := range []int{1, 4} {
		db, r, s := chaosOpen(t, workers, fault.Options{
			Seed:               4001,
			TransientReadRate:  0.10,
			TransientWriteRate: 0.05,
		})
		for _, strat := range []Strategy{ScanStrategy, TreeStrategy, IndexStrategy} {
			if err := db.DropCache(); err != nil {
				t.Fatalf("workers=%d %s: DropCache: %v", workers, strat, err)
			}
			ms, stats, err := db.Join(r, s, Overlaps(), strat)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, strat, err)
			}
			if matchKey(ms) != matchKey(want) {
				t.Fatalf("workers=%d %s: diverged from baseline (%d vs %d matches)",
					workers, strat, len(ms), len(want))
			}
			if stats.Downgrades != 0 {
				t.Errorf("workers=%d %s: unexpected downgrade", workers, strat)
			}
		}
		ps, ds := db.IOStats(), db.DiskStats()
		if ps.ReadRetries == 0 {
			t.Errorf("workers=%d: no read retries recorded: %+v", workers, ps)
		}
		if ds.ReadFaults == 0 || ds.WriteFaults == 0 {
			t.Errorf("workers=%d: injected faults not visible in DiskStats: %+v", workers, ds)
		}
		// Transient faults never reach the device, so the pool's physical
		// read attempts must equal the device's transfers plus its faults.
		if ps.Misses+ps.ReadRetries != ds.Reads+ds.ReadFaults {
			t.Errorf("workers=%d: attempt accounting: pool issued %d+%d, device saw %d+%d",
				workers, ps.Misses, ps.ReadRetries, ds.Reads, ds.ReadFaults)
		}
	}
}

// TestChaosMixedFaults runs schedules mixing transient faults with
// in-flight corruption across worker counts and asserts the core
// invariant: byte-identical result or typed error, never a silently wrong
// answer.
func TestChaosMixedFaults(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 4} {
			db, r, s := chaosOpen(t, workers, fault.Options{
				Seed:               seed,
				TransientReadRate:  0.20,
				TransientWriteRate: 0.05,
				CorruptRate:        0.10,
			})
			for _, strat := range []Strategy{ScanStrategy, TreeStrategy, IndexStrategy} {
				if err := db.DropCache(); err != nil {
					if !typedFailure(err) {
						t.Fatalf("seed=%d workers=%d %s: untyped DropCache error: %v", seed, workers, strat, err)
					}
					continue
				}
				ms, _, err := db.Join(r, s, Overlaps(), strat)
				if err != nil {
					if !typedFailure(err) {
						t.Fatalf("seed=%d workers=%d %s: untyped error: %v", seed, workers, strat, err)
					}
					continue
				}
				if matchKey(ms) != matchKey(want) {
					t.Fatalf("seed=%d workers=%d %s: SILENTLY WRONG ANSWER (%d vs %d matches)",
						seed, workers, strat, len(ms), len(want))
				}
			}
		}
	}
}

// TestChaosIndexLossFallsBack marks index backing pages permanently lost
// and asserts graceful degradation: tree and index joins fall back to the
// nested loop over the intact heap files, record the downgrade, and still
// return the exact baseline.
func TestChaosIndexLossFallsBack(t *testing.T) {
	want := chaosBaseline(t)
	for _, workers := range []int{1, 4} {
		db, r, s := chaosOpen(t, workers, fault.Options{Seed: 5005})
		ji, ok := db.joinIndexFor(r, s, Overlaps())
		if !ok {
			t.Fatal("join index missing")
		}
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
		db.FaultDisk().LosePage(storage.PageID{File: r.IndexFileID(), Page: 0})
		db.FaultDisk().LosePage(storage.PageID{File: ji.FileID(), Page: 0})

		for _, strat := range []Strategy{TreeStrategy, IndexStrategy} {
			ms, stats, err := db.Join(r, s, Overlaps(), strat)
			if err != nil {
				t.Fatalf("workers=%d %s: degradation failed: %v", workers, strat, err)
			}
			if stats.Downgrades != 1 {
				t.Errorf("workers=%d %s: Downgrades = %d, want 1", workers, strat, stats.Downgrades)
			}
			if matchKey(ms) != matchKey(want) {
				t.Fatalf("workers=%d %s: degraded result diverged (%d vs %d matches)",
					workers, strat, len(ms), len(want))
			}
		}
		// The scan strategy never touched the lost index pages.
		ms, stats, err := db.Join(r, s, Overlaps(), ScanStrategy)
		if err != nil || stats.Downgrades != 0 {
			t.Fatalf("workers=%d scan after index loss: err=%v downgrades=%d", workers, err, stats.Downgrades)
		}
		if matchKey(ms) != matchKey(want) {
			t.Fatalf("workers=%d: scan diverged after index loss", workers)
		}
	}
}

// TestChaosTornIndexPageDegrades corrupts an index page at rest (same bit
// flipped on every read, so retries cannot clear it) and asserts the
// checksum layer converts it into a degradation, not a wrong answer.
func TestChaosTornIndexPageDegrades(t *testing.T) {
	want := chaosBaseline(t)
	db, r, s := chaosOpen(t, 1, fault.Options{Seed: 6006})
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	db.FaultDisk().TearPage(storage.PageID{File: s.IndexFileID(), Page: 0})
	ms, stats, err := db.Join(r, s, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatalf("degradation after torn index page failed: %v", err)
	}
	if stats.Downgrades != 1 {
		t.Errorf("Downgrades = %d, want 1", stats.Downgrades)
	}
	if matchKey(ms) != matchKey(want) {
		t.Fatal("degraded result diverged from baseline")
	}
	if db.IOStats().ReadRetries == 0 {
		t.Error("checksum mismatches were not retried before degrading")
	}
}

// TestChaosHeapLossIsTyped loses a base heap page — the one thing
// degradation cannot route around — and asserts every strategy fails with
// the typed permanent classification intact, including through the
// fallback's error wrapping.
func TestChaosHeapLossIsTyped(t *testing.T) {
	for _, workers := range []int{1, 4} {
		db, r, s := chaosOpen(t, workers, fault.Options{Seed: 7007})
		if err := db.DropCache(); err != nil {
			t.Fatal(err)
		}
		rid, err := r.rel.RID(0)
		if err != nil {
			t.Fatal(err)
		}
		db.FaultDisk().LosePage(rid.Page)

		for _, strat := range []Strategy{ScanStrategy, TreeStrategy, IndexStrategy} {
			_, _, err := db.Join(r, s, Overlaps(), strat)
			if err == nil {
				t.Fatalf("workers=%d %s: join over lost heap page succeeded", workers, strat)
			}
			if !errors.Is(err, fault.ErrPermanent) {
				t.Fatalf("workers=%d %s: classification lost: %v", workers, strat, err)
			}
			if !fault.IsPermanent(err) || storage.IsTransient(err) {
				t.Fatalf("workers=%d %s: misclassified: %v", workers, strat, err)
			}
		}
	}
}

// TestChaosPreCancelledContext asserts an already-cancelled context aborts
// every strategy promptly with context.Canceled.
func TestChaosPreCancelledContext(t *testing.T) {
	db, r, s := chaosOpen(t, 4, fault.Options{Seed: 8008})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []Strategy{ScanStrategy, TreeStrategy, IndexStrategy} {
		_, _, err := db.JoinContext(ctx, r, s, Overlaps(), strat)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: got %v, want context.Canceled", strat, err)
		}
	}
	if _, _, err := db.SelectContext(ctx, s, NewRect(0, 0, 400, 400), Overlaps(), TreeStrategy); !errors.Is(err, context.Canceled) {
		t.Errorf("select: got %v, want context.Canceled", err)
	}
	rs, ss, world := chaosRects()
	if _, err := ZOverlapJoinCtx(ctx, rs, ss, world, 8, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("zorder: got %v, want context.Canceled", err)
	}
}

// TestChaosQueryTimeout configures a per-query deadline far below the
// injected device latency and asserts the deadline fires mid-descent with
// context.DeadlineExceeded, while a Join on a healthy twin completes.
func TestChaosQueryTimeout(t *testing.T) {
	rs, ss, _ := chaosRects()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.BufferPages = 48
	cfg.QueryTimeout = 5 * time.Millisecond
	cfg.Fault = &fault.Options{Seed: 9009, ReadLatency: 2 * time.Millisecond}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := loadRects(t, db, "r", rs)
	s := loadRects(t, db, "s", ss)
	if err := db.DropCache(); err != nil {
		t.Fatal(err)
	}
	// Cold tree join: the index scrub alone needs several 2ms reads, so the
	// 5ms budget cannot survive it.
	_, _, err = db.Join(r, s, Overlaps(), TreeStrategy)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}
