package spatialjoin

// Cross-strategy equivalence harness: every execution strategy — the
// nested-loop scan (I), the generalization-tree join (II), the
// precomputed join index (III), and the z-order sort-merge join — must
// return the identical canonically sorted match set for the overlaps
// operator, at every worker count.

import (
	"math/rand"
	"sync"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// loadRects inserts rects into a fresh collection of db, asserting dense
// IDs so collection IDs and slice indices coincide.
func loadRects(t *testing.T, db *Database, name string, rects []Rect) *Collection {
	t.Helper()
	col, err := db.CreateCollection(name)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rects {
		id, err := col.Insert(r, "")
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("rect %d got id %d", i, id)
		}
	}
	return col
}

func TestCrossStrategyEquivalence(t *testing.T) {
	world := geom.NewRect(0, 0, 1000, 1000)
	rng := rand.New(rand.NewSource(404))
	rs := datagen.UniformRects(rng, 320, world, 2, 40)
	ss := datagen.ClusteredRects(rng, 320, 8, world, 120, 25)

	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := loadRects(t, db, "r", rs)
		s := loadRects(t, db, "s", ss)
		if _, _, err := db.BuildJoinIndex(r, s, Overlaps()); err != nil {
			t.Fatal(err)
		}

		results := map[string][]Match{}
		for _, strat := range []Strategy{ScanStrategy, TreeStrategy, IndexStrategy} {
			ms, _, err := db.Join(r, s, Overlaps(), strat)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, strat, err)
			}
			results[strat.String()] = ms
		}
		zms, err := ZOverlapJoinWorkers(rs, ss, world, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		results["zorder"] = zms

		want := results["scan"]
		if len(want) == 0 {
			t.Fatal("workload produced no matches")
		}
		for name, got := range results {
			if matchKey(got) != matchKey(want) {
				t.Errorf("workers=%d: %s returned %d matches, scan %d",
					workers, name, len(got), len(want))
			}
			// Every strategy's output is canonically (R, S)-sorted, so the
			// raw slices — not just the sorted sets — must be identical.
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: %s not canonically ordered at %d: %v vs %v",
						workers, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestConcurrentDatabaseStress hammers one shared Database from many
// goroutines issuing mixed Join and Select calls (run under -race). Every
// goroutine must see the same answers, and the buffer pool's atomically
// maintained counters must stay consistent: misses never exceed logical
// reads, and the concurrent phase must actually have done work.
func TestConcurrentDatabaseStress(t *testing.T) {
	world := geom.NewRect(0, 0, 600, 600)
	rng := rand.New(rand.NewSource(77))

	cfg := DefaultConfig()
	cfg.BufferPages = 32 // small pool: force concurrent eviction traffic
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := loadRects(t, db, "r", datagen.UniformRects(rng, 200, world, 2, 30))
	s := loadRects(t, db, "s", datagen.UniformRects(rng, 200, world, 2, 30))

	wantJoin, _, err := db.Join(r, s, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewRect(100, 100, 400, 400)
	wantSel, _, err := db.Select(s, probe, Overlaps(), TreeStrategy)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantJoin) == 0 || len(wantSel) == 0 {
		t.Fatal("stress workload produced empty answers")
	}

	db.ResetIOStats()
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				switch (g + iter) % 3 {
				case 0:
					ms, _, err := db.Join(r, s, Overlaps(), TreeStrategy)
					if err != nil {
						errs[g] = err
						return
					}
					if matchKey(ms) != matchKey(wantJoin) {
						t.Errorf("goroutine %d: join diverged (%d vs %d matches)",
							g, len(ms), len(wantJoin))
						return
					}
				case 1:
					ms, _, err := db.Join(r, s, Overlaps(), ScanStrategy)
					if err != nil {
						errs[g] = err
						return
					}
					if matchKey(ms) != matchKey(wantJoin) {
						t.Errorf("goroutine %d: scan join diverged", g)
						return
					}
				default:
					ids, _, err := db.Select(s, probe, Overlaps(), TreeStrategy)
					if err != nil {
						errs[g] = err
						return
					}
					if len(ids) != len(wantSel) {
						t.Errorf("goroutine %d: select returned %d ids, want %d",
							g, len(ids), len(wantSel))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	stats := db.IOStats()
	if stats.LogicalReads == 0 {
		t.Fatal("concurrent phase recorded no logical reads")
	}
	if stats.Misses > stats.LogicalReads {
		t.Fatalf("inconsistent pool counters: %d misses > %d logical reads",
			stats.Misses, stats.LogicalReads)
	}
	if stats.Evictions > stats.Misses {
		t.Fatalf("inconsistent pool counters: %d evictions > %d misses",
			stats.Evictions, stats.Misses)
	}
}
